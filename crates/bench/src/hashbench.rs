//! Hash-lookup offload benchmarks: Fig 10, Fig 11, Table 4, Table 5
//! (paper §5.2).

use redn_core::ctx::{OffloadCtx, TableRegion, ValueSource};
use redn_core::offloads::hash_lookup::HashGetVariant;
use redn_core::offloads::rpc;
use rnic_sim::config::NicConfig;
use rnic_sim::error::Result;
use rnic_sim::ids::ProcessId;
use rnic_sim::mem::Access;
use rnic_sim::qp::QpConfig;
use rnic_sim::time::Time;
use rnic_sim::wqe::WorkRequest;

use redn_kv::baselines::{run_until_cqe, ClientEndpoint, OneSidedClient, TwoSidedMode};
use redn_kv::hopscotch::HopscotchTable;
use redn_kv::memcached::MemcachedServer;
use redn_kv::workload::latency_stats;

use crate::report::{bytes_label, Row};
use crate::{testbed, testbed_with};

/// The value sizes both Fig 10 and Fig 14 sweep.
pub const VALUE_SIZES: [u32; 5] = [64, 1024, 4096, 16384, 65536];

/// A synchronous RedN hash get against a hopscotch table. Returns
/// latencies over `reps` gets of keys placed at `placement` (0 = first
/// bucket, Fig 10; 1 = second bucket, Fig 11).
pub fn redn_hash_latencies(
    value_len: u32,
    variant: HashGetVariant,
    placement: usize,
    reps: usize,
) -> Result<Vec<Time>> {
    let (mut sim, c, s) = testbed();
    let mut table = HopscotchTable::create(&mut sim, s, 4096, value_len, ProcessId(0))?;
    let keys: Vec<u64> = (1..=reps as u64).collect();
    for &k in &keys {
        table
            .insert_at_candidate(
                &mut sim,
                k,
                &vec![(k & 0xFF) as u8; value_len as usize],
                placement,
            )?
            .expect("placement collision; adjust key set");
    }
    let ep = ClientEndpoint::create(&mut sim, c, value_len)?;
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 22)
        .build(&mut sim)?;
    let mut off = ctx
        .hash_get()
        .table(TableRegion::of(&table.mr()))
        .values(ValueSource::of(&table.heap.mr(), value_len))
        .respond_to(ep.dest())
        .variant(variant)
        .build(&mut sim)?;
    sim.connect_qps(ep.qp, off.tp.qp)?;

    let mut lats = Vec::with_capacity(reps);
    for &k in &keys {
        off.arm(&mut sim, ctx.pool_mut())?;
        sim.post_recv(ep.qp, WorkRequest::recv(0, 0, 0))?;
        let cands = table.candidate_addrs(k);
        let n = variant.buckets();
        let payload = off.client_payload(k, &cands[..n]);
        sim.mem_write(c, ep.req_buf, &payload)?;
        let start = sim.now();
        sim.post_send(
            ep.qp,
            rpc::trigger_send(ep.req_buf, ep.req_lkey, payload.len() as u32),
        )?;
        let cqe = run_until_cqe(&mut sim, ep.recv_cq)?.expect("response");
        lats.push(cqe.time - start);
    }
    Ok(lats)
}

/// The "Ideal" line: a single network round-trip READ of `value_len`.
pub fn ideal_read_latency(value_len: u32) -> Result<f64> {
    let (mut sim, c, s) = testbed();
    let cq = sim.create_cq(c, 16)?;
    let qp = sim.create_qp(c, QpConfig::new(cq))?;
    let scq = sim.create_cq(s, 16)?;
    let speer = sim.create_qp(s, QpConfig::new(scq))?;
    sim.connect_qps(qp, speer)?;
    let lbuf = sim.alloc(c, value_len as u64, 64)?;
    let lmr = sim.register_mr(c, lbuf, value_len as u64, Access::all())?;
    let rbuf = sim.alloc(s, value_len as u64, 64)?;
    let rmr = sim.register_mr(s, rbuf, value_len as u64, Access::all())?;
    let start = sim.now();
    sim.post_send(
        qp,
        WorkRequest::read(lbuf, lmr.lkey, value_len, rbuf, rmr.rkey).signaled(),
    )?;
    sim.run()?;
    let cqe = sim.poll_cq(cq, 1).pop().expect("cqe");
    Ok((cqe.time - start).as_us_f64())
}

/// One-sided hopscotch get latency (keys at `placement`).
pub fn one_sided_latency(value_len: u32, placement: usize, reps: usize) -> Result<f64> {
    let (mut sim, c, s) = testbed();
    let mut table = HopscotchTable::create(&mut sim, s, 4096, value_len, ProcessId(0))?;
    let keys: Vec<u64> = (1..=reps as u64).collect();
    for &k in &keys {
        table
            .insert_at_candidate(&mut sim, k, &vec![1u8; value_len as usize], placement)?
            .expect("placement collision");
    }
    let client = OneSidedClient::create(&mut sim, c, &table)?;
    let scq = sim.create_cq(s, 16)?;
    let sqp = sim.create_qp(s, QpConfig::new(scq))?;
    sim.connect_qps(client.ep.qp, sqp)?;
    let mut total = Time::ZERO;
    for &k in &keys {
        let (lat, found) = client.get(&mut sim, k, &table.candidates(k))?;
        assert!(found);
        total += lat;
    }
    Ok(total.as_us_f64() / reps as f64)
}

/// Two-sided get latency (polling/event/VMA) through the Memcached-style
/// server.
pub fn two_sided_latency(value_len: u32, mode: TwoSidedMode, reps: usize) -> Result<f64> {
    let (mut sim, c, s) = testbed();
    let server = MemcachedServer::create(&mut sim, s, 4096, value_len, ProcessId(0))?;
    server.populate(&mut sim, reps as u64)?;
    sim.set_runnable_threads(s, 1);
    let rpc = server.two_sided_frontend(&mut sim, mode)?;
    let ep = ClientEndpoint::create(&mut sim, c, value_len)?;
    sim.connect_qps(ep.qp, rpc.qp)?;
    let mut total = Time::ZERO;
    for k in 1..=reps as u64 {
        let (lat, found) = redn_kv::baselines::two_sided_get(&mut sim, &ep, k)?;
        assert!(found);
        total += lat;
    }
    Ok(total.as_us_f64() / reps as f64)
}

/// One row of Fig 10 / Fig 11: a value size followed by five per-system
/// latency columns.
pub type LatencyRow = (u32, f64, f64, f64, f64, f64);

/// Fig 10: average get latency vs value size, no collisions (first
/// bucket). Columns: ideal, RedN, one-sided, two-sided polling, two-sided
/// event.
pub fn fig10() -> Result<Vec<LatencyRow>> {
    let mut out = Vec::new();
    for &v in &VALUE_SIZES {
        let ideal = ideal_read_latency(v)?;
        let redn = latency_stats(&redn_hash_latencies(v, HashGetVariant::Single, 0, 15)?).avg_us;
        let one = one_sided_latency(v, 0, 15)?;
        let polling = two_sided_latency(v, TwoSidedMode::Polling, 15)?;
        let event = two_sided_latency(v, TwoSidedMode::Event, 15)?;
        out.push((v, ideal, redn, one, polling, event));
    }
    Ok(out)
}

/// Fig 11: get latency under collisions (second bucket). Columns: ideal,
/// RedN-Seq, RedN-Parallel, one-sided, two-sided polling.
pub fn fig11() -> Result<Vec<LatencyRow>> {
    let mut out = Vec::new();
    for &v in &VALUE_SIZES {
        let ideal = ideal_read_latency(v)?;
        let seq = latency_stats(&redn_hash_latencies(v, HashGetVariant::Sequential, 1, 15)?).avg_us;
        let par = latency_stats(&redn_hash_latencies(v, HashGetVariant::Parallel, 1, 15)?).avg_us;
        let one = one_sided_latency(v, 1, 15)?;
        let polling = two_sided_latency(v, TwoSidedMode::Polling, 15)?;
        out.push((v, ideal, seq, par, one, polling));
    }
    Ok(out)
}

/// Table 5: RedN vs StRoM latency (median + p99; StRoM numbers quoted
/// from the paper, which itself quotes [39]).
pub fn table5() -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (v, strom_med, strom_p99) in [(64u32, 7.0, 7.0), (4096, 12.0, 13.0)] {
        let stats = latency_stats(&redn_hash_latencies(v, HashGetVariant::Single, 0, 60)?);
        rows.push(Row::new(
            format!("RedN {} median", bytes_label(v as u64)),
            crate::report::us(stats.p50_us),
            if v == 64 { "5.7 us" } else { "6.7 us" },
            "",
        ));
        rows.push(Row::new(
            format!("RedN {} 99th", bytes_label(v as u64)),
            crate::report::us(stats.p99_us),
            if v == 64 { "6.9 us" } else { "8.4 us" },
            "",
        ));
        rows.push(Row::new(
            format!("StRoM {} median", bytes_label(v as u64)),
            "n/a (FPGA)",
            crate::report::us(strom_med),
            "paper-quoted [39]",
        ));
        rows.push(Row::new(
            format!("StRoM {} 99th", bytes_label(v as u64)),
            "n/a (FPGA)",
            crate::report::us(strom_p99),
            "paper-quoted [39]",
        ));
    }
    Ok(rows)
}

/// Hash-lookup throughput for Table 4: pipelined gets at `value_len`
/// through offloads on `ports` ports. Returns `(K ops/s, bottleneck)`.
pub fn hash_throughput(value_len: u32, ports: usize, requests: usize) -> Result<(f64, String)> {
    let nic = if ports == 2 {
        NicConfig::connectx5().dual_port()
    } else {
        NicConfig::connectx5()
    };
    let (mut sim, c, s) = testbed_with(nic);
    let mut table = HopscotchTable::create(&mut sim, s, 8192, value_len, ProcessId(0))?;
    table
        .insert_at_candidate(&mut sim, 1, &vec![1u8; value_len as usize], 0)?
        .expect("empty table cannot collide");
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)?;

    // One offload (and one client endpoint) per port.
    let mut offs = Vec::new();
    let mut eps = Vec::new();
    for port in 0..ports {
        let ep = ClientEndpoint::create(&mut sim, c, value_len)?;
        let off = ctx
            .hash_get()
            .table(TableRegion::of(&table.mr()))
            .values(ValueSource::of(&table.heap.mr(), value_len))
            .respond_to(ep.dest())
            .variant(HashGetVariant::Single)
            .on_port(port)
            .build(&mut sim)?;
        sim.connect_qps(ep.qp, off.tp.qp)?;
        offs.push(off);
        eps.push(ep);
    }

    // Arm and fire all requests back to back (pipelined).
    let per_port = requests / ports;
    for p in 0..ports {
        for i in 0..per_port {
            offs[p].arm(&mut sim, ctx.pool_mut())?;
            sim.post_recv(eps[p].qp, WorkRequest::recv(0, 0, 0))?;
            let _ = i;
        }
    }
    let start = sim.now();
    for p in 0..ports {
        let key = 1u64;
        let cands = table.candidate_addrs(key);
        let payload = offs[p].client_payload(key, &cands[..1]);
        // Stage one request payload per port; every trigger reuses it
        // (same key every time keeps the payload buffer stable).
        sim.mem_write(c, eps[p].req_buf, &payload)?;
        for _ in 0..per_port {
            sim.post_send(
                eps[p].qp,
                rpc::trigger_send(eps[p].req_buf, eps[p].req_lkey, payload.len() as u32),
            )?;
        }
    }
    sim.run()?;
    let elapsed = (sim.now() - start).as_us_f64();
    let total: u64 = eps.iter().map(|ep| sim.cq_total(ep.recv_cq)).sum();
    assert_eq!(total as usize, per_port * ports, "lost responses");
    let kops = total as f64 / elapsed * 1000.0;

    // Name the bottleneck from server NIC utilization. Link busy time is
    // summed across ports, so compare per-port load against the shared
    // PCIe bus.
    let u = sim.utilization(s);
    let busiest = [
        (u.fetch_busy / ports as u64, "NIC PU (managed fetch)"),
        (u.link_busy / ports as u64, "IB bandwidth"),
        (u.pcie_busy, "PCIe bandwidth"),
    ]
    .into_iter()
    .max_by_key(|(t, _)| t.as_ps())
    .map(|(_, n)| n.to_string())
    .unwrap_or_default();
    Ok((kops, busiest))
}

/// Table 4: lookup throughput and bottlenecks.
pub fn table4() -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (v, ports, paper_kops, paper_bn) in [
        (64u32, 1usize, 500.0, "NIC PU"),
        (64, 2, 1000.0, "NIC PU"),
        (65536, 1, 180.0, "IB bw"),
        (65536, 2, 190.0, "PCIe bw"),
    ] {
        let n = if v == 64 { 300 } else { 120 };
        let (kops, bottleneck) = hash_throughput(v, ports, n)?;
        rows.push(Row::new(
            format!(
                "{} / {}-port",
                if v <= 1024 {
                    "<=1KB".to_string()
                } else {
                    bytes_label(v as u64)
                },
                ports
            ),
            crate::report::kops(kops),
            crate::report::kops(paper_kops),
            format!("bottleneck: {bottleneck} (paper: {paper_bn})"),
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redn_matches_table5_at_64b() {
        let stats = latency_stats(&redn_hash_latencies(64, HashGetVariant::Single, 0, 20).unwrap());
        // Paper Table 5: median 5.7 us at 64 B.
        assert!(
            (stats.p50_us - 5.7).abs() < 1.5,
            "RedN 64B median {} (paper 5.7)",
            stats.p50_us
        );
    }

    #[test]
    fn fig10_ordering_holds_at_64b() {
        let ideal = ideal_read_latency(64).unwrap();
        let redn =
            latency_stats(&redn_hash_latencies(64, HashGetVariant::Single, 0, 10).unwrap()).avg_us;
        let one = one_sided_latency(64, 0, 10).unwrap();
        let event = two_sided_latency(64, TwoSidedMode::Event, 10).unwrap();
        assert!(ideal < redn, "ideal {ideal} < redn {redn}");
        assert!(redn < one, "redn {redn} < one-sided {one}");
        assert!(redn < event, "redn {redn} < event {event}");
        assert!(
            event / redn > 2.0,
            "event should be ~3.8x redn: {event} vs {redn}"
        );
    }

    #[test]
    fn fig10_redn_tracks_ideal_at_64k() {
        let ideal = ideal_read_latency(65536).unwrap();
        let redn =
            latency_stats(&redn_hash_latencies(65536, HashGetVariant::Single, 0, 5).unwrap())
                .avg_us;
        // Paper: 16.22 us, within ~5% of ideal. Allow 25% in simulation.
        assert!(
            redn / ideal < 1.3,
            "RedN {redn} should track ideal {ideal} at 64KB"
        );
    }

    #[test]
    fn fig11_parallel_beats_sequential() {
        let seq =
            latency_stats(&redn_hash_latencies(64, HashGetVariant::Sequential, 1, 10).unwrap())
                .avg_us;
        let par = latency_stats(&redn_hash_latencies(64, HashGetVariant::Parallel, 1, 10).unwrap())
            .avg_us;
        // Paper: RedN-Seq incurs >= 3 us extra; parallel stays near the
        // no-collision latency.
        assert!(
            seq - par > 1.0,
            "parallel {par} should beat sequential {seq} by ~3 us"
        );
    }

    #[test]
    fn table4_small_io_is_pu_bound_and_scales_with_ports() {
        let (one, bn) = hash_throughput(64, 1, 200).unwrap();
        assert!(bn.contains("NIC PU"), "bottleneck {bn}");
        assert!((one - 500.0).abs() / 500.0 < 0.4, "single-port {one} K/s");
        let (two, _) = hash_throughput(64, 2, 200).unwrap();
        assert!(two / one > 1.6, "dual port should ~double: {one} -> {two}");
    }

    #[test]
    fn table4_large_io_hits_bandwidth() {
        let (kops, bn) = hash_throughput(65536, 1, 80).unwrap();
        assert!(
            bn.contains("IB") || bn.contains("PCIe"),
            "64KB bottleneck should be bandwidth, got {bn}"
        );
        assert!(
            (kops - 180.0).abs() / 180.0 < 0.3,
            "64KB single-port {kops} K/s"
        );
    }
}
