//! `throughput` — serving-layer throughput sweep, emitting the
//! `BENCH_throughput.json` artifact.
//!
//! ```text
//! cargo run -p redn_bench --release --bin throughput              # full sweep
//! cargo run -p redn_bench --release --bin throughput -- --small   # CI-sized
//! cargo run -p redn_bench --release --bin throughput -- --out x.json
//! ```

use redn_bench::clusterbench::{cluster_read_point, failover_point, ClusterSweepConfig};
use redn_bench::report::{kops, print_table, us, Row};
use redn_bench::servebench::{throughput_sweep, SweepConfig};
use redn_bench::tenantbench::{noisy_neighbor_point, tenants_point, TenantSweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let cfg = if small {
        SweepConfig::small()
    } else {
        SweepConfig::full()
    };
    let ccfg = if small {
        ClusterSweepConfig::small()
    } else {
        ClusterSweepConfig::full()
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    println!(
        "# Serving-layer throughput sweep ({} clients, depth {}, {} ops/client)",
        cfg.clients, cfg.pipeline_depth, cfg.ops_per_client
    );
    let mut report = throughput_sweep(&cfg).expect("throughput sweep");
    println!(
        "# Cluster sweep ({} nodes x {} clients, window {})",
        ccfg.nodes, ccfg.clients_per_node, ccfg.window
    );
    report.cluster = Some(cluster_read_point(&ccfg).expect("cluster read sweep"));
    report.failover = Some(failover_point(&ccfg).expect("failover soak"));
    let tcfg = if small {
        TenantSweepConfig::small()
    } else {
        TenantSweepConfig::full()
    };
    println!(
        "# Tenant sweep ({} tenants x {} clients, window {})",
        tcfg.ntenants, tcfg.clients_per_tenant, tcfg.window
    );
    report.tenants = Some(tenants_point(&tcfg).expect("tenant sweep"));
    report.noisy_neighbor = Some(noisy_neighbor_point(&tcfg).expect("noisy-neighbor run"));

    let mut rows = vec![Row::new(
        "sync baseline (1 client)",
        kops(report.sync_baseline_ops_per_sec / 1e3),
        "—",
        "back-to-back redn_get",
    )];
    for p in &report.closed {
        let note = p
            .stats
            .latency
            .map(|l| format!("p99 {}", us(l.p99_us)))
            .unwrap_or_default();
        rows.push(Row::new(
            format!("closed loop K={}", p.k),
            kops(p.stats.ops_per_sec / 1e3),
            "—",
            note,
        ));
    }
    for p in &report.open {
        let note = match (p.stats.latency, p.stats.service_latency) {
            (Some(sched), Some(svc)) => format!(
                "sched p99 {} / svc p99 {}",
                us(sched.p99_us),
                us(svc.p99_us)
            ),
            _ => String::new(),
        };
        rows.push(Row::new(
            format!("open loop @ {}", kops(p.offered / 1e3)),
            kops(p.stats.ops_per_sec / 1e3),
            "—",
            note,
        ));
    }
    if let Some(m) = &report.mixed {
        rows.push(Row::new(
            format!(
                "mixed fleet ({} gets + {} walks) K={}",
                m.get_clients, m.walk_clients, m.k
            ),
            kops(m.stats.ops_per_sec / 1e3),
            "—",
            format!("{} gets / {} walks", m.stats.get_ops, m.stats.walk_ops),
        ));
    }
    if let Some(c) = &report.cluster {
        let note = c
            .stats
            .latency
            .map(|l| format!("p99 {}", us(l.p99_us)))
            .unwrap_or_default();
        rows.push(Row::new(
            format!(
                "cluster ({} nodes x {} clients) K={}",
                c.nodes,
                c.clients / c.nodes,
                c.k
            ),
            kops(c.stats.ops_per_sec / 1e3),
            "—",
            note,
        ));
    }
    if let Some(t) = &report.tenants {
        rows.push(Row::new(
            format!("tenants ({} packed) K={}", t.ntenants, t.k),
            kops(t.stats.ops_per_sec / 1e3),
            "—",
            format!("{} ops across shared PUs", t.stats.ops),
        ));
        for ts in &t.stats.per_tenant {
            let note = ts
                .latency
                .map(|l| format!("p99 {}, {} arm calls", us(l.p99_us), ts.host_arm_calls))
                .unwrap_or_default();
            rows.push(Row::new(
                format!("  tenant {}", ts.tenant),
                kops(ts.ops_per_sec / 1e3),
                "—",
                note,
            ));
        }
    }
    if let Some(n) = &report.noisy_neighbor {
        rows.push(Row::new(
            "noisy neighbor (B beside capped A)",
            kops(n.b_packed_ops_per_sec / 1e3),
            "—",
            format!(
                "B p99 {:.2}x solo, tput {:.2}x solo",
                n.p99_ratio, n.tput_ratio
            ),
        ));
    }
    print_table(
        "Serving-layer throughput",
        ["run", "achieved", "paper", "note"],
        &rows,
    );
    println!(
        "\npipelining speedup vs sync baseline: {:.2}x",
        report.speedup_vs_sync()
    );
    for v in &report.verbs_per_op {
        println!(
            "{} verbs/op: {:.2} optimized vs {:.2} naive (IR WAIT elision + restore merge)",
            v.name, v.after, v.before
        );
    }
    if let Some(s) = report.mixed_speedup_vs_sync() {
        println!("mixed (gets + walks) speedup vs sync baseline: {s:.2}x");
    }
    if let Some(f) = &report.failover {
        println!(
            "failover soak: detection {} -> promote {} -> re-replicate {} ({} records), blip {}, steady p99 {}, acked lost {}",
            us(f.detection_us),
            us(f.promote_us),
            us(f.rereplicate_us),
            f.records_recovered,
            us(f.blip_us),
            us(f.steady_p99_us),
            f.acked_lost
        );
        println!(
            "replication chain: {:.2} verbs/put on the NIC, {:.4} primary doorbells/put, {:.4} primary posts/put, {:.4} arm calls/put",
            f.repl_verbs_per_op,
            f.repl_primary_doorbells_per_put,
            f.repl_primary_posts_per_put,
            f.repl_primary_arm_calls_per_put
        );
    }

    if let Some(n) = &report.noisy_neighbor {
        println!(
            "noisy neighbor: A demanded {:.1}x its {} cap (shed {} posts, held {}); B p99 {} vs {} solo ({:.2}x), tput {:.2}x solo",
            n.demand_x_cap,
            kops(n.cap_ops_per_sec / 1e3),
            n.a_shed_posts,
            kops(n.a_ops_per_sec / 1e3),
            us(n.b_packed_p99_us),
            us(n.b_solo_p99_us),
            n.p99_ratio,
            n.tput_ratio
        );
    }

    std::fs::write(&out_path, report.to_json()).expect("write artifact");
    println!("wrote {out_path}");
}
