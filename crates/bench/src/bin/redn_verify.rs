//! `redn-verify` — the static-analysis CI gate.
//!
//! Deploys every shipped offload family with default [`DeployOpts`]
//! (verify on), which runs the full `redn_core::ir::analysis` pass suite
//! — happens-before deadlock detection, the recycled induction rule, and
//! symbolic bounds proofs — inside every `deploy`, then proves
//! deployment-level tenant isolation with the [`DeploymentVerifier`]:
//!
//! * a heterogeneous serving fleet (both hash-get modes, both list-walk
//!   modes) co-resident on one dual-port NIC, driven closed-loop so the
//!   host-armed families' arm-time programs are analyzed too;
//! * a packed multi-tenant fleet: four named tenants bin-packed onto
//!   shared PUs, proven non-interfering under tenant-qualified labels;
//! * the Fig 13 `+break` list walk (host-armed by design);
//! * the Appendix A Turing-machine ring;
//! * the sharded cluster: per-shard hash-get rings plus NIC-resident
//!   replication chains journaling onto neighbor nodes;
//! * the multi-tenant cluster: two tenant lanes per shard node sharing
//!   the nodes with the replication chains (the largest packed domain).
//!
//! One JSON [`AnalysisReport`] line per isolation domain, plus one
//! per-deployment status line. Exit code 0 iff every deployment passes
//! the per-program passes (a diagnostic is a hard deploy error) and
//! every isolation report is clean.
//!
//! ```text
//! cargo run -p redn_bench --release --bin redn-verify
//! ```
//!
//! [`DeployOpts`]: redn_core::ir::DeployOpts
//! [`DeploymentVerifier`]: redn_core::ir::analysis::DeploymentVerifier
//! [`AnalysisReport`]: redn_core::ir::analysis::AnalysisReport

use std::process::ExitCode;

use redn_bench::testbed_with;
use redn_cluster::cluster::{Cluster, ClusterSpec};
use redn_cluster::session::ClusterSession;
use redn_core::ctx::OffloadCtx;
use redn_core::ir::analysis::{self, AnalysisReport};
use redn_core::ir::{EnableTarget, IrProgram, Kind, Loc, OpBuild, WaitCond};
use redn_core::offloads::hash_lookup::HashGetVariant;
use redn_core::turing::machine::TuringMachine;
use redn_kv::baselines::ClientEndpoint;
use redn_kv::liststore::ListStore;
use redn_kv::memcached::MemcachedServer;
use redn_kv::serving::{FleetSpec, ServiceSpec, ServingFleet};
use redn_kv::session::SessionOpts;
use redn_kv::workload::Workload;
use rnic_sim::config::{HostConfig, NicConfig, SimConfig};
use rnic_sim::error::Result;
use rnic_sim::ids::ProcessId;
use rnic_sim::mem::Access;
use rnic_sim::sim::Simulator;

const NKEYS: u64 = 1024;

/// A hand-built linear chain analyzed directly (not deployed), so the
/// gate's output includes one report with real happens-before numbers:
/// an externally-enabled worker WRITE plus a control-queue WAIT/ENABLE
/// pair ordering it.
fn ir_demo() -> Result<AnalysisReport> {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("s", HostConfig::default(), NicConfig::connectx5());
    let ctrl_q = redn_core::ctx::ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)?;
    let worker_q = redn_core::ctx::ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)?;
    let dst_addr = sim.alloc(node, 64, 8)?;
    let dst = sim.register_mr(node, dst_addr, 64, Access::all())?;

    let mut p = IrProgram::linear();
    let ctrl = p.chain(ctrl_q);
    let worker = p.chain(worker_q);
    let c = p.const_bytes(7u64.to_le_bytes().to_vec());
    let w = p.push(
        worker,
        OpBuild::new(Kind::Write {
            src: Loc::cst(c),
            len: 8,
            dst: Loc::raw(dst.addr, dst.rkey),
            imm: None,
        })
        .signaled()
        .label("demo write"),
    );
    p.push(
        ctrl,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(w))).label("demo enable"),
    );
    p.push(
        ctrl,
        OpBuild::new(Kind::Wait(WaitCond::OpDoneSignaled(w))).label("demo wait"),
    );
    Ok(analysis::analyze(&p, &sim, "ir-demo"))
}

/// The heterogeneous serving fleet: every hash-get and list-walk mode
/// side by side on one dual-port NIC. Recycled services run the whole
/// pass suite at deploy; a short closed loop then forces the host-armed
/// services through `arm`, which deploys (and therefore analyzes) their
/// per-instance programs as well.
fn fleet() -> Result<AnalysisReport> {
    let (mut sim, client, server_node) = testbed_with(NicConfig::connectx5().dual_port());
    let server = MemcachedServer::create(&mut sim, server_node, 4096, 64, ProcessId(0))?;
    server.populate(&mut sim, NKEYS)?;
    let store = ListStore::create(&mut sim, server_node, 4, 4, 32, ProcessId(0))?;
    let mut ctx = OffloadCtx::builder(server_node)
        .pool_capacity(1 << 24)
        .build(&mut sim)?;
    let spec = FleetSpec::new(vec![
        ServiceSpec::gets(1, 4, HashGetVariant::Single, true),
        ServiceSpec::gets(1, 4, HashGetVariant::Sequential, true),
        ServiceSpec::gets(1, 4, HashGetVariant::Parallel, false),
        ServiceSpec::walks(2, 4, 4, true),
        ServiceSpec::walks(1, 4, 4, false),
    ]);
    let workloads = Workload::split_sequential(NKEYS, spec.get_clients());
    let mut fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        client,
        spec,
        workloads,
    )?;
    let report = fleet.isolation_report().clone();
    fleet.run_closed_loop(&mut sim, ctx.pool_mut(), 8, 2)?;
    Ok(report)
}

/// The packed multi-tenant fleet: four named tenants — heterogeneous
/// offload-family mixes — bin-packed onto one dual-port NIC's shared
/// PUs by the `TenantPacker`, then proven pairwise non-interfering
/// with tenant-qualified (`tenant/offload`) program labels. The
/// asserted counts pin the domain's size: 7 self-recycling programs,
/// C(7,2) = 21 pairs compared, every label tenant-qualified.
fn tenant_fleet() -> Result<AnalysisReport> {
    use redn_kv::tenancy::{NicGeometry, TenantSpec};
    let (mut sim, client, server_node) = testbed_with(NicConfig::connectx5().dual_port());
    let server = MemcachedServer::create(&mut sim, server_node, 4096, 64, ProcessId(0))?;
    server.populate(&mut sim, NKEYS)?;
    let store = ListStore::create(&mut sim, server_node, 4, 4, 32, ProcessId(0))?;
    let mut ctx = OffloadCtx::builder(server_node)
        .pool_capacity(1 << 24)
        .build(&mut sim)?;
    let tenants = vec![
        TenantSpec::new("analytics").with_gets(2, 4, HashGetVariant::Sequential, true),
        TenantSpec::new("cache").with_gets(1, 4, HashGetVariant::Single, true),
        TenantSpec::new("graph").with_walks(2, 4, 4, true),
        TenantSpec::new("mixed")
            .with_gets(1, 4, HashGetVariant::Sequential, true)
            .with_walks(1, 4, 4, true),
    ];
    let spec = FleetSpec::tenants(NicGeometry::of(&sim, server_node), &tenants)?;
    let workloads = Workload::split_sequential(NKEYS, spec.get_clients());
    let mut fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        client,
        spec,
        workloads,
    )?;
    let report = fleet.isolation_report().clone();
    assert_eq!(report.programs, 7, "7 recycled programs across 4 tenants");
    assert_eq!(report.checked, 21, "C(7,2) pairs compared");
    assert!(
        report.labels.iter().all(|l| l.contains('/')),
        "every program label is tenant-qualified"
    );
    fleet.run_closed_loop(&mut sim, ctx.pool_mut(), 8, 2)?;
    Ok(report)
}

/// The Fig 13 `+break` walk: host-armed by design (break suppresses the
/// completions pipelining counts on), so coverage is the `arm` call —
/// it deploys the early-exit chain through the analyzer.
fn break_walk() -> Result<()> {
    let (mut sim, client, server_node) = testbed_with(NicConfig::connectx5());
    let store = ListStore::create(&mut sim, server_node, 2, 6, 32, ProcessId(0))?;
    let ep = ClientEndpoint::create(&mut sim, client, 32)?;
    let mut ctx = OffloadCtx::builder(server_node)
        .pool_capacity(1 << 20)
        .build(&mut sim)?;
    let mut off = store
        .walk_builder(&ctx)
        .respond_to(ep.dest())
        .max_nodes(6)
        .break_on_match()
        .build(&mut sim)?;
    sim.connect_qps(ep.qp, off.tp.qp)?;
    off.arm(&mut sim, ctx.pool_mut())?;
    Ok(())
}

/// The Appendix A ring: a Turing machine compiled to a self-modifying,
/// self-restoring recycled chain — the analyzer's hardest customer
/// (multi-slot trigger WRITEs, post-patch operands, a self-enabling
/// ring).
fn turing() -> Result<()> {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::new(&mut sim, node)?;
    let tm = TuringMachine::busy_beaver_2();
    let compiled = ctx.compile_tm(&mut sim, &tm, &[0u32; 9], 4)?;
    sim.run()?;
    assert!(compiled.halted(&sim)?, "busy beaver must halt");
    Ok(())
}

/// The sharded cluster: per-shard recycled hash-get rings plus
/// NIC-resident replication chains whose journals live on neighbor
/// nodes — the cross-node isolation domain.
fn cluster() -> Result<AnalysisReport> {
    let (mut sim, mut cluster) = Cluster::deploy(ClusterSpec::small())?;
    let session = ClusterSession::connect(&mut sim, &mut cluster, SessionOpts::default())?;
    Ok(session.isolation_report().clone())
}

/// The packed multi-tenant cluster: two tenant lanes of recycled get
/// rings on every one of the 4 shard nodes, sharing the nodes with the
/// tenant-neutral replication chains — the largest isolation domain the
/// gate proves (2×4 gets + 4 chains = 12 programs, C(12,2) = 66 pairs).
fn cluster_tenants() -> Result<AnalysisReport> {
    let (mut sim, mut cluster) = Cluster::deploy(ClusterSpec::small())?;
    let session = ClusterSession::connect_tenants(
        &mut sim,
        &mut cluster,
        SessionOpts::default(),
        &["tenant-a", "tenant-b"],
    )?;
    let report = session.isolation_report().clone();
    assert_eq!(report.programs, 12, "2 tenants x 4 shards + 4 chains");
    assert_eq!(report.checked, 66, "C(12,2) pairs compared");
    assert_eq!(
        report
            .labels
            .iter()
            .filter(|l| l.starts_with("tenant-a/") || l.starts_with("tenant-b/"))
            .count(),
        8,
        "every get lane is tenant-qualified"
    );
    Ok(report)
}

/// One gate stage: run it, print a status (and report, if any) line,
/// and fold the verdict.
fn stage(name: &str, ok: &mut bool, run: impl FnOnce() -> Result<Option<AnalysisReport>>) {
    match run() {
        Ok(Some(report)) => {
            if !report.clean() {
                *ok = false;
            }
            println!("{}", report.to_json());
        }
        Ok(None) => {
            println!(
                "{{\"subject\":\"{}\",\"clean\":true,\"note\":\"analyzed at deploy\"}}",
                name
            );
        }
        Err(e) => {
            *ok = false;
            println!(
                "{{\"subject\":\"{}\",\"clean\":false,\"error\":\"{}\"}}",
                name,
                format!("{:?}", e).replace('"', "'")
            );
        }
    }
}

fn main() -> ExitCode {
    // Every deploy below runs with DeployOpts::default() (verify on):
    // one analysis diagnostic anywhere is an Err, which fails the gate.
    let mut ok = true;
    stage("ir-demo", &mut ok, || ir_demo().map(Some));
    stage("fleet", &mut ok, || fleet().map(Some));
    stage("tenants", &mut ok, || tenant_fleet().map(Some));
    stage("list-walk(+break)", &mut ok, || break_walk().map(|()| None));
    stage("turing-machine", &mut ok, || turing().map(|()| None));
    stage("cluster", &mut ok, || cluster().map(Some));
    stage("cluster-tenants", &mut ok, || cluster_tenants().map(Some));
    if ok {
        println!("redn-verify: all deployments proven clean");
        ExitCode::SUCCESS
    } else {
        println!("redn-verify: FAILED (see diagnostics above)");
        ExitCode::FAILURE
    }
}
