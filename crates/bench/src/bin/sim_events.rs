//! `sim_events` — event-engine microbench, emitting the
//! `BENCH_sim_events.json` artifact.
//!
//! ```text
//! cargo run -p redn_bench --release --bin sim_events                # small
//! cargo run -p redn_bench --release --bin sim_events -- --large    # 128-client, ~1M-op sweep
//! cargo run -p redn_bench --release --bin sim_events -- --out x.json
//! ```
//!
//! Measures the engine's hot paths with deterministic inputs: the
//! hierarchical wheel vs the pre-overhaul `BinaryHeap` on the same event
//! stream, the slab vs a `HashMap` on the same keyed window, and full
//! WQE-lifecycle dispatch. A counting global allocator reports
//! allocations per op alongside wall-clock events/s — wall-clock numbers
//! vary by machine, so CI gates the machine-independent rows (ratios,
//! allocs/op, and the sweep's simulated throughput) rather than raw
//! events/s.
//!
//! `--large` runs the 128-client, million-op closed-loop sweep as 16
//! independent 8-client shards. Shards are distributed over
//! `REDN_SIM_THREADS` worker threads; each shard builds its own
//! simulator, so the partition — and therefore every simulated number —
//! is identical for any thread count, and stats merge in shard order.

use redn_bench::servebench::{closed_point, SweepConfig};
use rnic_sim::config::{HostConfig, NicConfig, SimConfig};
use rnic_sim::engine::{BaselineHeapQueue, EventKind, EventQueue};
use rnic_sim::ids::WqId;
use rnic_sim::qp::QpConfig;
use rnic_sim::sim::Simulator;
use rnic_sim::time::Time;
use rnic_sim::wqe::WorkRequest;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator. Counts are
/// process-wide and monotonic; a measurement takes the delta around the
/// timed region.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One measured row: ops (events) completed, wall seconds, allocator
/// calls during the timed region.
struct Measured {
    ops: u64,
    secs: f64,
    allocs: u64,
}

impl Measured {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-12)
    }

    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / self.ops.max(1) as f64
    }
}

/// Time `f` over `iters` iterations; `f` returns its op count per run.
fn measure(iters: u32, mut f: impl FnMut() -> u64) -> Measured {
    // Warm-up run (fills pools, faults pages) stays out of the numbers.
    let _ = f();
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let mut ops = 0u64;
    for _ in 0..iters {
        ops += f();
    }
    let secs = t0.elapsed().as_secs_f64();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - a0;
    Measured { ops, secs, allocs }
}

/// Schedule + drain `n` interleaved events through the wheel.
fn wheel_stream(n: u64) -> u64 {
    let mut q = EventQueue::new();
    for i in 0..n {
        let at = Time::from_ps(if i % 2 == 0 { i * 100 } else { i * 90 + 7 });
        q.schedule(at, EventKind::WqAdvance { wq: WqId(i as u32) });
    }
    let mut popped = 0u64;
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

/// The identical stream through the pre-overhaul `BinaryHeap` queue.
fn heap_stream(n: u64) -> u64 {
    let mut q = BaselineHeapQueue::new();
    for i in 0..n {
        let at = Time::from_ps(if i % 2 == 0 { i * 100 } else { i * 90 + 7 });
        q.schedule(at, EventKind::WqAdvance { wq: WqId(i as u32) });
    }
    let mut popped = 0u64;
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

/// Keyed window through the slab (the in-flight-table shape).
fn slab_window(n: u64) -> u64 {
    let mut slab: rnic_sim::slab::Slab<u64> = rnic_sim::slab::Slab::new();
    let mut window = Vec::with_capacity(64);
    let mut done = 0u64;
    for i in 0..n {
        window.push(slab.insert(i));
        if window.len() == 64 {
            for key in window.drain(..) {
                std::hint::black_box(slab.get(key));
                slab.remove(key);
                done += 1;
            }
        }
    }
    for key in window.drain(..) {
        slab.remove(key);
        done += 1;
    }
    done
}

/// The identical keyed window through a `HashMap` with growing keys.
fn hashmap_window(n: u64) -> u64 {
    let mut map: HashMap<u64, u64> = HashMap::new();
    let mut window = Vec::with_capacity(64);
    let mut done = 0u64;
    for i in 0..n {
        map.insert(i, i);
        window.push(i);
        if window.len() == 64 {
            for key in window.drain(..) {
                std::hint::black_box(map.get(&key));
                map.remove(&key);
                done += 1;
            }
        }
    }
    for key in window.drain(..) {
        map.remove(&key);
        done += 1;
    }
    done
}

/// Full dispatch: `n` signaled loopback NOOPs through fetch/issue/CQE.
/// Returns simulator events processed (the engine-op count).
fn dispatch_storm(n: u64) -> u64 {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
    let cq = sim.create_cq(node, 16384).unwrap();
    let qp = sim
        .create_qp(node, QpConfig::new(cq).sq_depth(4096))
        .unwrap();
    let peer = sim.create_qp(node, QpConfig::new(cq)).unwrap();
    sim.connect_qps(qp, peer).unwrap();
    let mut completed = 0u64;
    let mut remaining = n;
    while remaining > 0 {
        let batch = remaining.min(4_000);
        for _ in 0..batch {
            sim.post_send(qp, WorkRequest::noop().signaled()).unwrap();
        }
        sim.run().unwrap();
        completed += sim.poll_cq(cq, 16384).len() as u64;
        remaining -= batch;
    }
    assert_eq!(completed, n);
    sim.events_processed()
}

/// The `--large` sweep: `shards` independent closed-loop testbeds run on
/// a worker pool, stats merged in shard order. The shard partition is
/// fixed, so results are byte-identical for any `REDN_SIM_THREADS`.
struct LargeSweep {
    clients: usize,
    total_ops: u64,
    sim_ops_per_sec: f64,
    events: u64,
    timeouts: u64,
    threads: usize,
    wall_secs: f64,
}

fn large_sweep(shards: usize, clients_per_shard: usize, ops_per_client: u64) -> LargeSweep {
    let threads = SimConfig::threads_from_env();
    let cfg = SweepConfig {
        clients: clients_per_shard,
        pipeline_depth: 8,
        ops_per_client,
        nkeys: 1024,
        value_len: 64,
        server_ports: 2,
        closed_windows: vec![8],
        open_load_fractions: vec![],
        self_recycling: true,
        mixed_get_clients: 0,
        mixed_walk_clients: 0,
        walk_max_nodes: 4,
    };
    let t0 = Instant::now();
    let next_shard = AtomicUsize::new(0);
    let mut results: Vec<Option<(f64, u64, u64)>> = vec![None; shards];
    {
        type Slot<'a> = std::sync::Mutex<&'a mut Option<(f64, u64, u64)>>;
        let slots: Vec<Slot<'_>> = results.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(shards) {
                scope.spawn(|| loop {
                    let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    let stats = closed_point(&cfg, 8).expect("large-sweep shard");
                    **slots[shard].lock().unwrap() =
                        Some((stats.ops_per_sec, stats.ops, stats.timeouts));
                });
            }
        });
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut sim_ops_per_sec = 0.0;
    let mut total_ops = 0u64;
    let mut timeouts = 0u64;
    for r in results {
        let (ops_s, ops, t) = r.expect("every shard ran");
        sim_ops_per_sec += ops_s;
        total_ops += ops;
        timeouts += t;
    }
    LargeSweep {
        clients: shards * clients_per_shard,
        total_ops,
        sim_ops_per_sec,
        events: 0,
        timeouts,
        threads,
        wall_secs,
    }
}

fn row_json(name: &str, m: &Measured) -> String {
    format!(
        "  \"{}\": {{\"ops\":{},\"events_per_sec\":{:.1},\"allocs_per_op\":{:.4}}}",
        name,
        m.ops,
        m.ops_per_sec(),
        m.allocs_per_op()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim_events.json".to_string());

    println!("# Event-engine microbench (wheel vs heap, slab vs hashmap, dispatch)");
    let n = 100_000u64;
    let wheel = measure(10, || wheel_stream(n));
    let heap = measure(10, || heap_stream(n));
    let slab = measure(10, || slab_window(n));
    let hashmap = measure(10, || hashmap_window(n));
    let dispatch = measure(3, || dispatch_storm(20_000));

    let wheel_speedup = wheel.ops_per_sec() / heap.ops_per_sec();
    let slab_speedup = slab.ops_per_sec() / hashmap.ops_per_sec();
    println!(
        "wheel    {:>12.0} ev/s  {:.4} allocs/op   ({:.2}x vs heap)",
        wheel.ops_per_sec(),
        wheel.allocs_per_op(),
        wheel_speedup
    );
    println!(
        "heap     {:>12.0} ev/s  {:.4} allocs/op",
        heap.ops_per_sec(),
        heap.allocs_per_op()
    );
    println!(
        "slab     {:>12.0} op/s  {:.4} allocs/op   ({:.2}x vs hashmap)",
        slab.ops_per_sec(),
        slab.allocs_per_op(),
        slab_speedup
    );
    println!(
        "hashmap  {:>12.0} op/s  {:.4} allocs/op",
        hashmap.ops_per_sec(),
        hashmap.allocs_per_op()
    );
    println!(
        "dispatch {:>12.0} ev/s  {:.4} allocs/event",
        dispatch.ops_per_sec(),
        dispatch.allocs_per_op()
    );

    let mut out = String::from("{\n");
    out.push_str(&row_json("wheel", &wheel));
    out.push_str(",\n");
    out.push_str(&row_json("heap", &heap));
    out.push_str(",\n");
    out.push_str(&row_json("slab", &slab));
    out.push_str(",\n");
    out.push_str(&row_json("hashmap", &hashmap));
    out.push_str(",\n");
    out.push_str(&row_json("dispatch", &dispatch));
    out.push_str(&format!(
        ",\n  \"wheel_vs_heap_speedup\": {wheel_speedup:.3},\n  \"slab_vs_hashmap_speedup\": {slab_speedup:.3}"
    ));

    // Sharded closed-loop sweeps. The small one always runs (its
    // simulated throughput is the deterministic CI anchor); `--large`
    // adds the 128-client, million-op row.
    let sweep = large_sweep(4, 4, 128); // 16 clients, 2K ops
    println!(
        "sweep    {} clients  {} ops  {:.0} simulated ops/s  {} timeouts  ({} threads, {:.2}s wall)",
        sweep.clients,
        sweep.total_ops,
        sweep.sim_ops_per_sec,
        sweep.timeouts,
        sweep.threads,
        sweep.wall_secs
    );
    let _ = sweep.events;
    out.push_str(&format!(
        ",\n  \"sweep\": {{\"clients\":{},\"ops\":{},\"sim_ops_per_sec\":{:.1},\"timeouts\":{},\"threads\":{},\"wall_secs\":{:.3}}}",
        sweep.clients, sweep.total_ops, sweep.sim_ops_per_sec, sweep.timeouts, sweep.threads, sweep.wall_secs
    ));
    if large {
        let big = large_sweep(16, 8, 8_192); // 128 clients, ~1.05M ops
        println!(
            "large    {} clients  {} ops  {:.0} simulated ops/s  {} timeouts  ({} threads, {:.2}s wall)",
            big.clients,
            big.total_ops,
            big.sim_ops_per_sec,
            big.timeouts,
            big.threads,
            big.wall_secs
        );
        out.push_str(&format!(
            ",\n  \"large_sweep\": {{\"clients\":{},\"ops\":{},\"sim_ops_per_sec\":{:.1},\"timeouts\":{},\"threads\":{},\"wall_secs\":{:.3}}}",
            big.clients, big.total_ops, big.sim_ops_per_sec, big.timeouts, big.threads, big.wall_secs
        ));
    }
    out.push_str("\n}\n");
    std::fs::write(&out_path, out).expect("write artifact");
    println!("# wrote {out_path}");
}
