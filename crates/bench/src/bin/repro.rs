//! `repro` — regenerate every table and figure of the RedN paper.
//!
//! ```text
//! cargo run -p redn_bench --release --bin repro            # everything
//! cargo run -p redn_bench --release --bin repro -- fig10   # one artifact
//! ```
//!
//! Artifacts: table1 table2 table3 table4 table5 table6 fig7 fig8 fig10
//! fig11 fig13 fig14 fig15 fig16 appendix

use redn_bench::report::{bytes_label, print_table, us, Row};
use redn_bench::{contention, crash, hashbench, listbench, mcbench, micro, turingbench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("# RedN reproduction — paper vs simulated measurement");
    println!("# (NSDI '22: \"RDMA is Turing complete, we just did not know it yet!\")");

    if want("table1") {
        let rows = micro::table1().expect("table1");
        print_table(
            "Table 1 — verb processing bandwidth by generation",
            ["RNIC", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("table2") {
        let rows = micro::table2().expect("table2");
        print_table(
            "Table 2 — WR cost of RedN constructs",
            ["construct", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("table3") {
        let rows = micro::table3().expect("table3");
        print_table(
            "Table 3 — verb & construct throughput (one CX5 port)",
            ["operation", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("fig7") {
        let rows = micro::fig7().expect("fig7");
        print_table(
            "Fig 7 — RDMA verb latencies (64 B)",
            ["verb", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("fig8") {
        let rows = micro::fig8().expect("fig8");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(n, wq, comp, db)| {
                Row::new(
                    format!("{n} ops"),
                    format!("wq {:.2} / compl {:.2} / doorbell {:.2}", wq, comp, db),
                    "marginals 0.17 / 0.19 / 0.54 us",
                    "",
                )
            })
            .collect();
        print_table(
            "Fig 8 — chain latency by ordering mode (us)",
            ["chain", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("fig10") {
        let rows = hashbench::fig10().expect("fig10");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(v, ideal, redn, one, polling, event)| {
                Row::new(
                    bytes_label(v as u64),
                    format!(
                        "ideal {} | RedN {} | 1-sided {} | poll {} | event {}",
                        us(ideal),
                        us(redn),
                        us(one),
                        us(polling),
                        us(event)
                    ),
                    "RedN ~ ideal; others above",
                    "",
                )
            })
            .collect();
        print_table(
            "Fig 10 — hash get latency, no collisions",
            ["value", "measured", "paper shape", "note"],
            &rows,
        );
    }
    if want("fig11") {
        let rows = hashbench::fig11().expect("fig11");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(v, ideal, seq, par, one, polling)| {
                Row::new(
                    bytes_label(v as u64),
                    format!(
                        "ideal {} | Seq {} | Par {} | 1-sided {} | poll {}",
                        us(ideal),
                        us(seq),
                        us(par),
                        us(one),
                        us(polling)
                    ),
                    "Par ~ no-collision; Seq +>=3us",
                    "",
                )
            })
            .collect();
        print_table(
            "Fig 11 — hash get latency under collisions (2nd bucket)",
            ["value", "measured", "paper shape", "note"],
            &rows,
        );
    }
    if want("table4") {
        let rows = hashbench::table4().expect("table4");
        print_table(
            "Table 4 — hash lookup throughput & bottleneck",
            ["config", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("table5") {
        let rows = hashbench::table5().expect("table5");
        print_table(
            "Table 5 — RedN vs StRoM hash-get latency",
            ["system/size", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("fig13") {
        let rows = listbench::fig13().expect("fig13");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(range, redn, brk, one, two, wrs, brk_wrs)| {
                Row::new(
                    format!("range {range}"),
                    format!(
                        "RedN {} | +break {} | 1-sided {} | 2-sided {}",
                        us(redn),
                        us(brk),
                        us(one),
                        us(two)
                    ),
                    "RedN < baselines at range 8",
                    format!("WRs: {wrs:.0} vs {brk_wrs:.0}+break"),
                )
            })
            .collect();
        print_table(
            "Fig 13 — linked-list walk latency (8-node list)",
            ["range", "measured", "paper shape", "note"],
            &rows,
        );
    }
    if want("fig14") {
        let rows = mcbench::fig14().expect("fig14");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(v, redn, one, vma)| {
                Row::new(
                    bytes_label(v as u64),
                    format!(
                        "RedN {} | 1-sided {} ({:.1}x) | VMA {} ({:.1}x)",
                        us(redn),
                        us(one),
                        one / redn,
                        us(vma),
                        vma / redn
                    ),
                    "up to 1.7x / 2.6x",
                    "",
                )
            })
            .collect();
        print_table(
            "Fig 14 — Memcached get latency",
            ["value", "measured", "paper", "note"],
            &rows,
        );
    }
    if want("fig15") {
        let rows = contention::fig15(40).expect("fig15");
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|r| {
                Row::new(
                    format!("{} writers", r.writers),
                    format!(
                        "RedN avg {} p99 {} | 2-sided avg {} p99 {}",
                        us(r.redn.stats.avg_us),
                        us(r.redn.stats.p99_us),
                        us(r.two_sided.stats.avg_us),
                        us(r.two_sided.stats.p99_us)
                    ),
                    "RedN flat <7us; 2-sided tail exploding",
                    format!(
                        "p99 isolation {:.0}x",
                        r.two_sided.stats.p99_us / r.redn.stats.p99_us
                    ),
                )
            })
            .collect();
        print_table(
            "Fig 15 — get latency under writer contention",
            ["writers", "measured", "paper shape", "note"],
            &rows,
        );
    }
    if want("fig16") {
        let (redn, vanilla) = crash::fig16(150).expect("fig16");
        let (ro, rmin) = crash::outage(&redn, 0.25);
        let (vo, _) = crash::outage(&vanilla, 0.25);
        let rows = vec![
            Row::new(
                "RedN (hull-parent resources)",
                format!("outage {ro:.2}s, min throughput {:.0}%", rmin * 100.0),
                "no disruption",
                "",
            ),
            Row::new(
                "Vanilla Memcached",
                format!("outage {vo:.2}s"),
                "~2.25 s (1 s restart + 1.25 s rebuild)",
                "crash at t=5s of 12s",
            ),
        ];
        print_table(
            "Fig 16 — process crash at t=5s (normalized throughput)",
            ["system", "measured", "paper", "note"],
            &rows,
        );
        println!("\n  timeline (normalized gets per 250 ms bucket):");
        print!("  RedN    ");
        for p in redn.iter().step_by(2) {
            print!("{}", spark(p.normalized));
        }
        println!();
        print!("  vanilla ");
        for p in vanilla.iter().step_by(2) {
            print!("{}", spark(p.normalized));
        }
        println!();
    }
    if want("table6") {
        let rows = crash::table6().expect("table6");
        print_table(
            "Table 6 — component failure rates (+ OS-panic probe)",
            ["component", "value", "reliability", "note"],
            &rows,
        );
    }
    if want("appendix") {
        let rows = turingbench::appendix_a().expect("appendix");
        print_table(
            "Appendix A — mov emulation & Turing machines on the NIC",
            ["artifact", "result", "paper", "note"],
            &rows,
        );
    }
}

fn spark(v: f64) -> char {
    const BARS: [char; 9] = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    BARS[((v * 8.0).round() as usize).min(8)]
}
