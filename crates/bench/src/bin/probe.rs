//! Bottleneck probe for the serving fleet: runs one closed-loop sweep
//! point in each serving mode and prints the server-NIC resource
//! utilization breakdown, so perf work can see which engine the knee
//! sits on (fetch engine, PUs, atomics, link, PCIe).
//!
//! `cargo run -p redn_bench --release --bin probe`

use redn_bench::testbed_with;
use redn_core::ctx::OffloadCtx;
use redn_core::offloads::hash_lookup::HashGetVariant;
use redn_kv::memcached::MemcachedServer;
use redn_kv::serving::{FleetSpec, ServingFleet};
use redn_kv::workload::Workload;
use rnic_sim::config::NicConfig;
use rnic_sim::ids::ProcessId;
use rnic_sim::time::Time;

fn run(self_recycling: bool) {
    let (mut sim, client, server_node) = testbed_with(NicConfig::connectx5().dual_port());
    let nkeys = 1024u64;
    let server = MemcachedServer::create(&mut sim, server_node, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, nkeys).unwrap();
    let mut ctx = OffloadCtx::builder(server_node)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    let spec = FleetSpec::gets(
        8,
        16,
        if self_recycling {
            HashGetVariant::Sequential
        } else {
            HashGetVariant::Parallel
        },
        self_recycling,
    );
    let workloads = Workload::split_sequential(nkeys, spec.total_clients());
    let mut fleet =
        ServingFleet::deploy(&mut sim, &mut ctx, &server, None, client, spec, workloads).unwrap();
    let u0 = sim.utilization(server_node);
    let t0 = sim.now();
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), 1000, 16)
        .unwrap();
    let u1 = sim.utilization(server_node);
    let elapsed = (sim.now() - t0).as_us_f64();
    println!(
        "mode={} ops {} ops/s {:.0} elapsed_us {:.1} arms {} srv_doorbells {} srv_posts {} cli_doorbells {}",
        if self_recycling { "recycled" } else { "host-armed" },
        stats.ops,
        stats.ops_per_sec,
        elapsed,
        stats.host_arm_calls,
        stats.server_doorbells,
        stats.server_posts,
        stats.client_doorbells,
    );
    let pct = |a: Time, b: Time| 100.0 * (b - a).as_us_f64() / elapsed;
    println!(
        "  pu_busy {:6.1}%  fetch_busy {:6.1}%  atomic_busy {:6.1}%  link {:5.1}%  pcie {:5.1}%",
        pct(u0.pu_busy, u1.pu_busy),
        pct(u0.fetch_busy, u1.fetch_busy),
        pct(u0.atomic_busy, u1.atomic_busy),
        pct(u0.link_busy, u1.link_busy),
        pct(u0.pcie_busy, u1.pcie_busy),
    );
}

fn main() {
    run(true);
    run(false);
}
