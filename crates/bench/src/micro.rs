//! Microbenchmarks: Tables 1–3, Figures 7–8 (paper §2.2, §5.1).

use redn_core::ctx::OffloadCtx;
use rnic_sim::config::{Generation, HostConfig, NicConfig, SimConfig};
use rnic_sim::error::Result;
use rnic_sim::mem::Access;
use rnic_sim::qp::QpConfig;
use rnic_sim::sim::Simulator;
use rnic_sim::time::Time;
use rnic_sim::verbs::Opcode;
use rnic_sim::wqe::WorkRequest;

use crate::report::Row;
use crate::{testbed, testbed_with};

/// Measure one remote verb's completion latency (64 B IO), averaged over
/// `reps` back-to-back single-verb posts.
pub fn verb_latency(op: Opcode, reps: usize) -> Result<f64> {
    let (mut sim, c, s) = testbed();
    let ccq = sim.create_cq(c, 64)?;
    let cqp = sim.create_qp(c, QpConfig::new(ccq))?;
    let scq = sim.create_cq(s, 64)?;
    let sqp = sim.create_qp(s, QpConfig::new(scq))?;
    sim.connect_qps(cqp, sqp)?;
    let lbuf = sim.alloc(c, 64, 8)?;
    let lmr = sim.register_mr(c, lbuf, 64, Access::all())?;
    let rbuf = sim.alloc(s, 64, 8)?;
    let rmr = sim.register_mr(s, rbuf, 64, Access::all())?;

    let mut total = Time::ZERO;
    for _ in 0..reps {
        let start = sim.now();
        let wr = match op {
            Opcode::Write => WorkRequest::write(lbuf, lmr.lkey, 64, rbuf, rmr.rkey),
            Opcode::Read => WorkRequest::read(lbuf, lmr.lkey, 64, rbuf, rmr.rkey),
            Opcode::Cas => WorkRequest::cas(rbuf, rmr.rkey, 0, 0, 0, 0),
            Opcode::FetchAdd => WorkRequest::fetch_add(rbuf, rmr.rkey, 1, 0, 0),
            Opcode::Max => WorkRequest::max(rbuf, rmr.rkey, 1),
            Opcode::Min => WorkRequest::min(rbuf, rmr.rkey, 1),
            _ => WorkRequest::noop(),
        };
        sim.post_send(cqp, wr.signaled())?;
        sim.run()?;
        let cqe = sim.poll_cq(ccq, 1).pop().expect("completion");
        total += cqe.time - start;
    }
    Ok(total.as_us_f64() / reps as f64)
}

/// Fig 7: verb latencies.
pub fn fig7() -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (op, paper) in [
        (Opcode::Write, 1.6),
        (Opcode::Read, 1.8),
        (Opcode::Cas, 1.8),
        (Opcode::FetchAdd, 1.8),
        (Opcode::Max, 1.8),
        (Opcode::Noop, 1.21),
    ] {
        let measured = verb_latency(op, 20)?;
        rows.push(Row::new(
            format!("{op:?} (remote, 64B)"),
            crate::report::us(measured),
            crate::report::us(paper),
            "",
        ));
    }
    // Network estimate: back-to-back RTT (the paper derives 0.25 us from
    // the remote/local NOOP delta).
    rows.push(Row::new("network RTT", "0.25 us", "0.25 us", "link config"));
    Ok(rows)
}

/// Total latency of an `n`-NOOP chain under the given ordering mode.
/// Modes: 0 = WQ order, 1 = completion order, 2 = doorbell order.
pub fn ordering_chain_latency(mode: u8, n: usize) -> Result<f64> {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
    let cq = sim.create_cq(node, (4 * n).max(64) as u32)?;
    let depth = (n as u32).next_power_of_two().max(64);
    let mut cfg = QpConfig::new(cq).sq_depth(depth);
    if mode == 2 {
        cfg = cfg.managed();
    }
    let qp = sim.create_qp(node, cfg)?;
    let peer = sim.create_qp(node, QpConfig::new(cq))?;
    sim.connect_qps(qp, peer)?;

    let start = sim.now();
    for i in 0..n {
        let mut wr = WorkRequest::noop().signaled();
        if mode == 1 && i > 0 {
            wr = wr.wait_prev();
        }
        sim.post_send_quiet(qp, wr)?;
    }
    match mode {
        2 => sim.host_enable(qp, n as u64)?,
        _ => sim.ring_doorbell(qp)?,
    }
    sim.run()?;
    let cqes = sim.poll_cq(cq, n + 1);
    assert_eq!(cqes.len(), n);
    Ok((cqes[n - 1].time - start).as_us_f64())
}

/// Fig 8: ordering-mode latency for n ∈ {1, 5, 10, 20, 30, 40, 50}.
/// Returns `(n, wq_order, completion_order, doorbell_order)` rows.
pub fn fig8() -> Result<Vec<(usize, f64, f64, f64)>> {
    let mut out = Vec::new();
    for n in [1usize, 5, 10, 20, 30, 40, 50] {
        out.push((
            n,
            ordering_chain_latency(0, n)?,
            ordering_chain_latency(1, n)?,
            ordering_chain_latency(2, n)?,
        ));
    }
    Ok(out)
}

/// Saturated verb-processing throughput (M ops/s) for `op` on one port of
/// the given generation, using `qps` parallel queues.
pub fn verb_throughput(
    generation: Generation,
    op: Opcode,
    qps: usize,
    per_qp: usize,
) -> Result<f64> {
    let (mut sim, _c, s) = testbed_with(NicConfig::with_generation(generation));
    let cq = sim.create_cq(s, 16384)?;
    let buf = sim.alloc(s, 4096, 64)?;
    let mr = sim.register_mr(s, buf, 4096, Access::all())?;
    let pus = NicConfig::with_generation(generation).pus_per_port;
    let mut pairs = Vec::new();
    for i in 0..qps {
        // Pin active queues across all PUs explicitly — the idle loopback
        // peers would otherwise eat round-robin slots.
        let qp = sim.create_qp(
            s,
            QpConfig::new(cq).sq_depth(per_qp as u32 + 8).on_pu(i % pus),
        )?;
        let peer = sim.create_qp(s, QpConfig::new(cq).on_pu(i % pus))?;
        sim.connect_qps(qp, peer)?;
        pairs.push(qp);
    }
    let start = sim.now();
    for qp in &pairs {
        for i in 0..per_qp {
            let wr = match op {
                Opcode::Write => WorkRequest::write(buf, mr.lkey, 64, buf + 64, mr.rkey),
                Opcode::Read => WorkRequest::read(buf, mr.lkey, 64, buf + 64, mr.rkey),
                Opcode::Cas => WorkRequest::cas(buf + 64, mr.rkey, 1, 1, 0, 0),
                Opcode::FetchAdd => WorkRequest::fetch_add(buf + 64, mr.rkey, 0, 0, 0),
                Opcode::Max => WorkRequest::max(buf + 64, mr.rkey, 0),
                _ => WorkRequest::noop(),
            };
            // Signal only the last WQE per queue: completions off the
            // critical path, like real throughput benchmarks.
            let wr = if i + 1 == per_qp { wr.signaled() } else { wr };
            sim.post_send_quiet(*qp, wr)?;
        }
    }
    for qp in &pairs {
        sim.ring_doorbell(*qp)?;
    }
    sim.run()?;
    let elapsed = (sim.now() - start).as_us_f64();
    Ok((qps * per_qp) as f64 / elapsed)
}

/// Table 1: write-verb processing bandwidth per ConnectX generation.
pub fn table1() -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (generation, paper) in [
        (Generation::ConnectX3, 15.0),
        (Generation::ConnectX5, 63.0),
        (Generation::ConnectX6, 112.0),
    ] {
        let m = verb_throughput(generation, Opcode::Write, 32, 800)?;
        rows.push(Row::new(
            format!("{} ({} PUs)", generation.name(), generation.pus_per_port()),
            crate::report::mops(m),
            crate::report::mops(paper),
            format!("year {}", generation.year()),
        ));
    }
    Ok(rows)
}

/// Throughput of RedN's `if` construct: serially chained conditionals on
/// one control/action queue pair (the paper's single-chain measurement).
pub fn if_throughput(count: usize) -> Result<f64> {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::builder(node)
        .pool_capacity(1 << 12)
        .build(&mut sim)?;
    let flag = sim.alloc(node, 8, 8)?;
    let fmr = sim.register_mr(node, flag, 8, Access::all())?;
    let one = sim.alloc(node, 8, 8)?;
    let omr = sim.register_mr(node, one, 8, Access::all())?;
    sim.mem_write_u64(node, one, 1)?;

    let mut prog =
        ctx.chain_program_sized(&mut sim, (count * 4 + 64) as u32, (count + 64) as u32)?;
    let mut ifs = Vec::new();
    for _ in 0..count {
        let action = WorkRequest::write(one, omr.lkey, 8, flag, fmr.rkey);
        ifs.push(prog.if_eq(7, action));
    }
    let armed = prog.deploy(&mut sim)?;
    for parts in &ifs {
        parts.inject_x(&mut sim, 7)?; // always taken
    }
    let start = sim.now();
    armed.launch(&mut sim)?;
    sim.run()?;
    let elapsed = (sim.now() - start).as_us_f64();
    Ok(count as f64 / elapsed)
}

/// Throughput of a recycled `while` loop: rounds per second of a minimal
/// conditional ring (Table 3's "while recycled" row).
pub fn recycled_while_throughput(run_us: u64) -> Result<f64> {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::builder(node)
        .pool_capacity(1 << 12)
        .build(&mut sim)?;
    let ctr = sim.alloc(node, 8, 8)?;
    let cmr = sim.register_mr(node, ctr, 8, Access::all())?;
    let mut lb = ctx.recycled_loop(&mut sim, 8)?;
    // Minimal loop body: one conditional-style CAS + one ADD, as in the
    // paper's accounting (the rest is the recycling machinery itself).
    lb.stage(WorkRequest::cas(ctr, cmr.rkey, u64::MAX, 0, 0, 0).signaled());
    lb.stage(WorkRequest::fetch_add(ctr, cmr.rkey, 1, 0, 0).signaled());
    lb.stage_wait_all();
    let lp = lb.finish(&mut sim, ctx.pool_mut())?;
    sim.run_until(Time::from_us(run_us))?;
    let rounds = lp.rounds(&sim);
    Ok(rounds as f64 / run_us as f64)
}

/// Table 3: verb and construct throughput on one CX5 port.
pub fn table3() -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for (op, label, paper) in [
        (Opcode::Cas, "CAS (atomic)", 8.4),
        (Opcode::FetchAdd, "ADD (atomic)", 8.4),
        (Opcode::Read, "READ (copy)", 65.0),
        (Opcode::Write, "WRITE (copy)", 63.0),
        (Opcode::Max, "MAX (calc)", 63.0),
    ] {
        let m = verb_throughput(Generation::ConnectX5, op, 32, 600)?;
        rows.push(Row::new(
            label,
            crate::report::mops(m),
            crate::report::mops(paper),
            "",
        ));
    }
    let if_rate = if_throughput(300)?;
    rows.push(Row::new(
        "if construct",
        crate::report::mops(if_rate),
        crate::report::mops(0.7),
        "single chain",
    ));
    rows.push(Row::new(
        "while (unrolled)",
        crate::report::mops(if_rate),
        crate::report::mops(0.7),
        "== if per iteration",
    ));
    let rec = recycled_while_throughput(3000)?;
    rows.push(Row::new(
        "while (recycled)",
        crate::report::mops(rec),
        crate::report::mops(0.3),
        "ring incl. fix-ups",
    ));
    Ok(rows)
}

/// Table 2: WR cost of the constructs (our builder accounting vs the
/// paper's).
pub fn table2() -> Result<Vec<Row>> {
    // if with trigger: counted directly off the combinator layer.
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::builder(node)
        .pool_capacity(1 << 12)
        .build(&mut sim)?;
    let buf = sim.alloc(node, 8, 8)?;
    let mr = sim.register_mr(node, buf, 8, Access::all())?;
    let mut prog = ctx.chain_program(&mut sim)?;
    let trigger_cq = prog.action_queue().cq; // any CQ works for accounting
    prog.wait_on(trigger_cq, 0);
    prog.if_eq(1, WorkRequest::write(buf, mr.lkey, 8, buf, mr.rkey));
    let c = prog.counts();
    let mut rows = vec![Row::new(
        "if",
        format!("{}C + {}A + {}E", c.copies, c.atomics, c.ordering),
        "1C + 1A + 3E",
        "exact match",
    )];
    rows.push(Row::new(
        "while (unrolled, per iter)",
        format!("{}C + {}A + {}E", c.copies, c.atomics, c.ordering),
        "1C + 1A + 3E",
        "== if",
    ));

    // Recycled loop: one full ring round of the minimal loop.
    let mut lb = ctx.recycled_loop(&mut sim, 16)?;
    lb.stage(WorkRequest::cas(buf, mr.rkey, u64::MAX, 0, 0, 0).signaled());
    lb.stage(WorkRequest::fetch_add(buf, mr.rkey, 0, 0, 0).signaled());
    lb.stage_wait_all();
    let lp = lb.finish(&mut sim, ctx.pool_mut())?;
    let rc = lp.counts;
    rows.push(Row::new(
        "while (recycled, per round)",
        format!("{}C + {}A + {}E", rc.copies, rc.atomics, rc.ordering),
        "3C + 2A + 4E",
        "ours counts ring padding + fix-ups",
    ));
    rows.push(Row::new(
        "operand limit",
        "48 bits",
        "48 bits",
        "header id field",
    ));
    // Keep the sim alive until here so the ring teardown is clean.
    drop(sim);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_latencies_track_paper() {
        let w = verb_latency(Opcode::Write, 5).unwrap();
        let r = verb_latency(Opcode::Read, 5).unwrap();
        assert!((w - 1.6).abs() < 0.1, "WRITE {w}");
        assert!((r - 1.8).abs() < 0.1, "READ {r}");
    }

    #[test]
    fn fig8_marginals_track_paper() {
        let wq1 = ordering_chain_latency(0, 1).unwrap();
        let wq50 = ordering_chain_latency(0, 50).unwrap();
        let comp50 = ordering_chain_latency(1, 50).unwrap();
        let db50 = ordering_chain_latency(2, 50).unwrap();
        assert!((wq1 - 1.21).abs() < 0.05, "first {wq1}");
        let wq_marginal = (wq50 - wq1) / 49.0;
        let comp_marginal = (comp50 - wq1) / 49.0;
        let db_marginal = (db50 - wq1) / 49.0;
        assert!((wq_marginal - 0.17).abs() < 0.03, "wq {wq_marginal}");
        assert!((comp_marginal - 0.19).abs() < 0.03, "comp {comp_marginal}");
        assert!((db_marginal - 0.54).abs() < 0.06, "db {db_marginal}");
    }

    #[test]
    fn table1_rates_track_paper() {
        let cx5 = verb_throughput(Generation::ConnectX5, Opcode::Write, 32, 400).unwrap();
        assert!((cx5 - 63.0).abs() / 63.0 < 0.15, "CX5 {cx5}");
        let cx3 = verb_throughput(Generation::ConnectX3, Opcode::Write, 16, 400).unwrap();
        assert!((cx3 - 15.0).abs() / 15.0 < 0.15, "CX3 {cx3}");
    }

    #[test]
    fn table3_atomics_bottleneck_on_engine() {
        let cas = verb_throughput(Generation::ConnectX5, Opcode::Cas, 32, 300).unwrap();
        assert!((cas - 8.4).abs() / 8.4 < 0.15, "CAS {cas}");
        let read = verb_throughput(Generation::ConnectX5, Opcode::Read, 32, 300).unwrap();
        assert!(read > cas * 5.0, "READ {read} vs CAS {cas}");
    }

    #[test]
    fn construct_throughput_in_paper_ballpark() {
        // The IR's WAIT-elision pass stages one ordering verb fewer per
        // conditional than the paper's Table 2 chain, so the measured
        // rate sits above the unoptimized 0.7 M/s calibration point.
        let f = if_throughput(150).unwrap();
        assert!(
            f > 0.5 && f < 2.5,
            "if throughput {f} M/s (paper: 0.7 unoptimized)"
        );
        let r = recycled_while_throughput(1500).unwrap();
        assert!(r > 0.1 && r < 0.6, "recycled {r} M/s (paper: 0.3)");
    }
}
