//! Offline, dependency-free subset of the `rand` crate API this workspace
//! uses. The container image ships no registry, so the workspace vendors
//! the few entry points it needs (`StdRng::seed_from_u64`,
//! `RngExt::random`, `RngExt::random_range`) over a deterministic
//! splitmix64/xoshiro-style generator. Not cryptographic; benchmarks and
//! workload generation only.

#![warn(missing_docs)]

use core::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of the `rand` RNG extension trait).
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn random_range<T: RandomRange>(&mut self, range: Range<T>) -> T {
        T::pick(self.next_u64(), range)
    }
}

/// Types constructible from 64 random bits.
pub trait FromRandom {
    /// Map raw bits to a value.
    fn from_random(bits: u64) -> Self;
}

macro_rules! impl_from_random {
    ($($t:ty),*) => {
        $(impl FromRandom for $t {
            fn from_random(bits: u64) -> Self {
                bits as $t
            }
        })*
    };
}
impl_from_random!(u8, u16, u32, u64, usize);

impl FromRandom for bool {
    fn from_random(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Types samplable from a half-open range.
pub trait RandomRange: Sized {
    /// Map raw bits into `[range.start, range.end)`.
    fn pick(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_random_range {
    ($($t:ty),*) => {
        $(impl RandomRange for $t {
            fn pick(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (bits % span) as $t
            }
        })*
    };
}
impl_random_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna) — deterministic, passes basic avalanche.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let x: u64 = a.random();
        let y: u64 = a.random();
        assert_ne!(x, y);
    }
}
