//! Offline, dependency-free subset of the `criterion` API this
//! workspace's `benches/` use. It keeps the familiar surface —
//! [`Criterion::bench_function`], [`Bencher::iter`], `criterion_group!`,
//! `criterion_main!` — but measures with plain wall-clock timing and
//! prints one line per benchmark instead of producing HTML reports. The
//! container image ships no registry, so the workspace vendors this
//! instead of the real crate.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // One warm-up pass, then `sample_size` measured passes (bounded by
        // measurement_time so cheap stubs stay fast).
        let mut b = Bencher::default();
        f(&mut b);
        b.reset();
        let deadline = Instant::now() + self.measurement_time;
        let mut samples = 0usize;
        while samples < self.sample_size && Instant::now() < deadline {
            f(&mut b);
            samples += 1;
        }
        let (iters, elapsed) = b.totals();
        if iters > 0 {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench {name:<40} {:>12.3} us/iter ({iters} iters)",
                per_iter * 1e6
            );
        }
        self
    }
}

/// Per-benchmark iteration driver (subset of `criterion::Bencher`).
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time one closure invocation (the routine under benchmark).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }

    fn reset(&mut self) {
        self.iters = 0;
        self.elapsed = Duration::ZERO;
    }

    fn totals(&self) -> (u64, Duration) {
        (self.iters, self.elapsed)
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group (both the simple and the configured form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
