//! Offline, dependency-free subset of the `proptest` API this
//! workspace's tests use: the `proptest!` macro, `Strategy` with
//! `prop_map`, range / tuple / collection / sample strategies, `any`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Generation is deterministic (seeded per test from the test name) and
//! there is **no shrinking** — a failing case panics with the generated
//! values' debug output instead. The container image ships no registry,
//! so the workspace vendors this instead of the real crate.

#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// A strategy producing uniformly random values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Map 64 random bits to a value.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        })*
    };
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::Rng) -> T {
        T::from_bits(rng.next_u64())
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fail the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports the optional
/// `#![proptest_config(...)]` header and one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed per test name: deterministic across runs, distinct
                // across tests.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng = $crate::test_runner::Rng::from_seed(seed);
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(64).max(1024),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // Rendered eagerly so the body may consume the inputs.
                    let case_desc = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)*
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "property {} failed after {} case(s): {}\nwith inputs:\n{}",
                            stringify!($name),
                            accepted + 1,
                            msg,
                            case_desc
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}
