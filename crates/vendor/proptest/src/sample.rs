//! Sampling strategies over explicit value sets.

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Strategy drawing uniformly from `options` (subset of
/// `proptest::sample::select`).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
