//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! `Just`, and `prop_map`.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::Rng;

/// A recipe for generating values (subset of `proptest::strategy`).
/// No shrinking: `generate` produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*
    };
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
