//! Deterministic RNG, per-test configuration, and case outcomes.

/// Per-test configuration (subset of `proptest::test_runner`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// An assertion failed; abort the property with this message.
    Fail(String),
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}
