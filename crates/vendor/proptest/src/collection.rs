//! Collection strategies: `vec` and `btree_set`.

use core::ops::Range;
use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Strategy for `Vec`s whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s with between `size.start` and `size.end - 1`
/// elements (deduplication may produce fewer).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let want = self.size.start + rng.below(span) as usize;
        let mut out = BTreeSet::new();
        // Bounded attempts: duplicates shrink the set, as in real proptest.
        for _ in 0..want.saturating_mul(4).max(4) {
            if out.len() >= want {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
