//! Simulated host memory: a byte-addressable arena with RDMA memory-region
//! registration.
//!
//! Everything the NIC touches — application buffers, hash tables, *and the
//! work queues themselves* — lives here as raw bytes. This is what makes
//! RedN's self-modifying chains honest in simulation: a CAS that lands
//! inside a WQ buffer really does change the bytes the NIC will decode when
//! it later fetches that WQE.
//!
//! Regions are owned by a [`ProcessId`] so the failure experiments (§5.6 of
//! the paper) can model the OS reclaiming a crashed process's memory: when
//! a process dies without a "hull parent", its registrations are torn down
//! and subsequent NIC accesses fault — exactly the failure mode the paper
//! works around with an empty parent process holding the RDMA resources.

use crate::error::{Error, Result};
use crate::ids::{NodeId, ProcessId};

/// Base virtual address of the simulated arena. Starting above zero keeps
/// null-ish addresses faulting, which catches builder bugs early.
pub const ARENA_BASE: u64 = 0x1_0000;

/// Minimal bitflags without a dependency: generates a transparent wrapper
/// with `contains`/`union` plus the constants declared in the macro body.
macro_rules! bitflags_lite {
    (
        $(#[$doc:meta])*
        pub struct $name:ident: $ty:ty {
            $($(#[$fdoc:meta])* const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
        pub struct $name(pub $ty);

        impl $name {
            $($(#[$fdoc])* pub const $flag: $name = $name($val);)*

            /// No permissions.
            pub const fn empty() -> $name { $name(0) }

            /// All permissions.
            pub const fn all() -> $name {
                $name($($val |)* 0)
            }

            /// Whether all bits in `other` are set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Union of two permission sets.
            pub const fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }
    };
}

bitflags_lite! {
    /// Access permissions for a memory region, mirroring
    /// `ibv_access_flags`.
    pub struct Access: u8 {
        /// NIC may read locally (lkey).
        const LOCAL_READ = 1;
        /// NIC may write locally (lkey).
        const LOCAL_WRITE = 2;
        /// Remote peers may READ (rkey).
        const REMOTE_READ = 4;
        /// Remote peers may WRITE (rkey).
        const REMOTE_WRITE = 8;
        /// Remote peers may execute atomics (rkey).
        const REMOTE_ATOMIC = 16;
    }
}

/// A registered memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Start address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Local key (used in WQE scatter/gather entries).
    pub lkey: u32,
    /// Remote key (used in one-sided verbs).
    pub rkey: u32,
    /// Permissions granted at registration.
    pub access: Access,
    /// Owning process: regions die with their owner unless re-parented.
    pub owner: ProcessId,
}

/// The byte-addressable memory of one simulated host.
pub struct HostMemory {
    node: NodeId,
    data: Vec<u8>,
    brk: u64,
    regions: Vec<MemoryRegion>,
    next_key: u32,
}

impl HostMemory {
    /// Create an arena of `capacity` bytes for `node`.
    pub fn new(node: NodeId, capacity: u64) -> HostMemory {
        HostMemory {
            node,
            data: vec![0; capacity as usize],
            brk: ARENA_BASE,
            regions: Vec::new(),
            next_key: 0x100,
        }
    }

    /// Bump-allocate `len` bytes aligned to `align` (power of two).
    /// There is no free: simulations are short-lived and deterministic.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<u64> {
        debug_assert!(align.is_power_of_two());
        let addr = (self.brk + align - 1) & !(align - 1);
        let end = addr.checked_add(len).ok_or(Error::OutOfMemory(self.node))?;
        if end - ARENA_BASE > self.data.len() as u64 {
            return Err(Error::OutOfMemory(self.node));
        }
        self.brk = end;
        Ok(addr)
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.brk - ARENA_BASE
    }

    fn offset(&self, addr: u64, len: u64) -> Result<usize> {
        let end = addr.checked_add(len).ok_or(Error::BadAddress {
            node: self.node,
            addr,
            len,
        })?;
        if addr < ARENA_BASE || end - ARENA_BASE > self.data.len() as u64 || end > self.brk {
            return Err(Error::BadAddress {
                node: self.node,
                addr,
                len,
            });
        }
        Ok((addr - ARENA_BASE) as usize)
    }

    /// Read `len` bytes at `addr` (no key check — host CPU access).
    pub fn read(&self, addr: u64, len: u64) -> Result<&[u8]> {
        let off = self.offset(addr, len)?;
        Ok(&self.data[off..off + len as usize])
    }

    /// Write bytes at `addr` (no key check — host CPU access).
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<()> {
        let off = self.offset(addr, bytes.len() as u64)?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Read a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> Result<u32> {
        let b = self.read(addr, 4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Register `[addr, addr+len)` for RDMA access on behalf of `owner`.
    pub fn register(
        &mut self,
        addr: u64,
        len: u64,
        access: Access,
        owner: ProcessId,
    ) -> Result<MemoryRegion> {
        // Validate the range exists.
        self.offset(addr, len)?;
        let lkey = self.next_key;
        let rkey = self.next_key + 1;
        self.next_key += 2;
        let mr = MemoryRegion {
            addr,
            len,
            lkey,
            rkey,
            access,
            owner,
        };
        self.regions.push(mr);
        Ok(mr)
    }

    /// Deregister by lkey. Returns whether a region was removed.
    pub fn deregister(&mut self, lkey: u32) -> bool {
        let before = self.regions.len();
        self.regions.retain(|r| r.lkey != lkey);
        self.regions.len() != before
    }

    /// Drop every region owned by `owner` — what the OS does when a process
    /// dies and nothing else holds the RDMA resources (§5.6).
    /// Returns how many regions were reclaimed.
    pub fn reclaim_owner(&mut self, owner: ProcessId) -> usize {
        let before = self.regions.len();
        self.regions.retain(|r| r.owner != owner);
        before - self.regions.len()
    }

    /// Re-parent all regions of `from` to `to` — the "empty hull parent"
    /// trick of §5.6 ([38]): resources registered by the hull survive the
    /// child's crash.
    pub fn reparent(&mut self, from: ProcessId, to: ProcessId) -> usize {
        let mut n = 0;
        for r in &mut self.regions {
            if r.owner == from {
                r.owner = to;
                n += 1;
            }
        }
        n
    }

    fn find_key(&self, key: u32, remote: bool) -> Option<&MemoryRegion> {
        self.regions
            .iter()
            .find(|r| if remote { r.rkey == key } else { r.lkey == key })
    }

    /// The registered region a key resolves to (rkey when `remote`, lkey
    /// otherwise) — the static analyzer's bounds oracle. `None` when the
    /// key is not registered on this node (e.g. a client-side key the
    /// program targets through a not-yet-connected QP).
    pub fn region_by_key(&self, key: u32, remote: bool) -> Option<&MemoryRegion> {
        self.find_key(key, remote)
    }

    /// Validate an NIC access under `key`. `remote` selects rkey vs lkey
    /// semantics; `write`/`atomic` select the permission bit.
    pub fn check_key(
        &self,
        key: u32,
        addr: u64,
        len: u64,
        remote: bool,
        write: bool,
        atomic: bool,
    ) -> Result<()> {
        let viol = |reason| Error::KeyViolation {
            node: self.node,
            key,
            addr,
            len,
            reason,
        };
        let r = self
            .find_key(key, remote)
            .ok_or_else(|| viol("key not registered"))?;
        if addr < r.addr || addr + len > r.addr + r.len {
            return Err(viol("outside registered range"));
        }
        let needed = match (remote, write, atomic) {
            (true, _, true) => Access::REMOTE_ATOMIC,
            (true, true, _) => Access::REMOTE_WRITE,
            (true, false, _) => Access::REMOTE_READ,
            (false, true, _) => Access::LOCAL_WRITE,
            (false, false, _) => Access::LOCAL_READ,
        };
        if !r.access.contains(needed) {
            return Err(viol("insufficient permissions"));
        }
        Ok(())
    }

    /// NIC-side read under a key.
    pub fn nic_read(&self, key: u32, addr: u64, len: u64, remote: bool) -> Result<Vec<u8>> {
        self.check_key(key, addr, len, remote, false, false)?;
        Ok(self.read(addr, len)?.to_vec())
    }

    /// Allocation-free [`HostMemory::nic_read`]: appends the bytes to
    /// `out` (a pooled buffer on the simulator's data path). On error,
    /// `out` is untouched.
    pub fn nic_read_into(
        &self,
        key: u32,
        addr: u64,
        len: u64,
        remote: bool,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.check_key(key, addr, len, remote, false, false)?;
        out.extend_from_slice(self.read(addr, len)?);
        Ok(())
    }

    /// NIC-side write under a key.
    pub fn nic_write(&mut self, key: u32, addr: u64, bytes: &[u8], remote: bool) -> Result<()> {
        self.check_key(key, addr, bytes.len() as u64, remote, true, false)?;
        self.write(addr, bytes)
    }

    /// NIC-side 8-byte atomic under an rkey. Returns the *old* value.
    /// `op` receives the old value and produces the new one.
    pub fn nic_atomic(&mut self, rkey: u32, addr: u64, op: impl FnOnce(u64) -> u64) -> Result<u64> {
        if !addr.is_multiple_of(8) {
            return Err(Error::InvalidWr("atomic target must be 8-byte aligned"));
        }
        self.check_key(rkey, addr, 8, true, true, true)?;
        let old = self.read_u64(addr)?;
        let new = op(old);
        self.write_u64(addr, new)?;
        Ok(old)
    }

    /// Number of live registrations (for tests and the failure harness).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    fn mem() -> HostMemory {
        HostMemory::new(NodeId(0), 1 << 20)
    }

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let mut m = mem();
        let a = m.alloc(10, 8).unwrap();
        assert_eq!(a % 8, 0);
        let b = m.alloc(64, 64).unwrap();
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(m.alloc(2 << 20, 8).is_err());
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        let a = m.alloc(16, 8).unwrap();
        m.write_u64(a, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u64(a).unwrap(), 0x0123_4567_89ab_cdef);
        m.write_u32(a + 8, 42).unwrap();
        assert_eq!(m.read_u32(a + 8).unwrap(), 42);
    }

    #[test]
    fn oob_access_faults() {
        let mut m = mem();
        let a = m.alloc(8, 8).unwrap();
        assert!(m.read(a, 9).is_err());
        assert!(m.read(ARENA_BASE - 8, 8).is_err());
        assert!(m.write(a + 4, &[0; 8]).is_err());
        assert!(m.read_u64(u64::MAX - 3).is_err());
    }

    #[test]
    fn key_checks_enforce_permissions() {
        let mut m = mem();
        let a = m.alloc(64, 8).unwrap();
        let mr = m
            .register(a, 64, Access::LOCAL_READ | Access::REMOTE_READ, P0)
            .unwrap();
        // Remote read OK, remote write denied, atomic denied.
        assert!(m.nic_read(mr.rkey, a, 8, true).is_ok());
        assert!(m.nic_write(mr.rkey, a, &[1; 8], true).is_err());
        assert!(m.nic_atomic(mr.rkey, a, |v| v + 1).is_err());
        // Wrong key, wrong range.
        assert!(m.nic_read(0xdead, a, 8, true).is_err());
        assert!(m.nic_read(mr.rkey, a + 60, 8, true).is_err());
        // lkey is not an rkey.
        assert!(m.nic_read(mr.lkey, a, 8, true).is_err());
        assert!(m.nic_read(mr.lkey, a, 8, false).is_ok());
    }

    #[test]
    fn atomics_require_alignment_and_return_old() {
        let mut m = mem();
        let a = m.alloc(16, 8).unwrap();
        let mr = m.register(a, 16, Access::all(), P0).unwrap();
        m.write_u64(a, 7).unwrap();
        let old = m.nic_atomic(mr.rkey, a, |v| v + 5).unwrap();
        assert_eq!(old, 7);
        assert_eq!(m.read_u64(a).unwrap(), 12);
        assert!(m.nic_atomic(mr.rkey, a + 4, |v| v).is_err());
    }

    #[test]
    fn crash_reclaims_regions_reparent_saves_them() {
        let mut m = mem();
        let a = m.alloc(64, 8).unwrap();
        let mr0 = m.register(a, 32, Access::all(), P0).unwrap();
        let _mr1 = m.register(a + 32, 32, Access::all(), P1).unwrap();
        assert_eq!(m.region_count(), 2);

        // Hull-parent trick: re-parent P0's regions to P1, then P0 dies.
        assert_eq!(m.reparent(P0, P1), 1);
        assert_eq!(m.reclaim_owner(P0), 0);
        assert!(m.nic_read(mr0.rkey, a, 8, true).is_ok());

        // Without a hull, the crash kills access.
        assert_eq!(m.reclaim_owner(P1), 2);
        assert!(m.nic_read(mr0.rkey, a, 8, true).is_err());
    }

    #[test]
    fn deregister_removes_key() {
        let mut m = mem();
        let a = m.alloc(8, 8).unwrap();
        let mr = m.register(a, 8, Access::all(), P0).unwrap();
        assert!(m.deregister(mr.lkey));
        assert!(!m.deregister(mr.lkey));
        assert!(m.nic_read(mr.rkey, a, 8, true).is_err());
    }

    #[test]
    fn access_flag_algebra() {
        let rw = Access::REMOTE_READ | Access::REMOTE_WRITE;
        assert!(rw.contains(Access::REMOTE_READ));
        assert!(!rw.contains(Access::REMOTE_ATOMIC));
        assert!(Access::all().contains(rw));
        assert!(!Access::empty().contains(Access::LOCAL_READ));
    }
}
