//! Free-list slabs and buffer pools for the simulator's per-event hot
//! paths.
//!
//! The event loop used to key in-flight messages, timer callbacks, and CQ
//! listeners through `HashMap<u64, _>` — a hash, a probe, and an eventual
//! rehash on every single event. A [`Slab`] replaces that with a dense
//! `Vec` plus a LIFO free list: insert and remove are two array writes,
//! lookups are one bounds-checked index. Keys carry a **generation tag**
//! so a stale key (held across a remove + reuse of the same slot) misses
//! instead of aliasing the new occupant — the same safety the HashMap's
//! ever-growing `u64` keys provided, without the hashing.
//!
//! [`BufPool`] recycles `Vec<u8>` payload/result buffers: the data path
//! gathers every SEND/WRITE payload and every READ response into a byte
//! buffer, and freeing + reallocating those per message dominated the
//! allocator profile. Buffers return to the pool at completion and are
//! handed back (cleared, capacity intact) to the next message.

/// Number of low bits holding the slot index; the rest hold the
/// generation. 2^32 concurrent slots is far beyond any simulation.
const INDEX_BITS: u32 = 32;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

struct Entry<T> {
    /// Generation of the current (or next, when vacant) occupant. Bumped
    /// on remove, so old keys to this slot stop resolving.
    generation: u32,
    value: Option<T>,
}

/// A generation-checked free-list slab. Keys are `u64` (generation in the
/// high bits, slot index in the low bits) and remain unique across
/// insert/remove cycles of the same slot.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// LIFO free list of vacant slot indices — deterministic reuse order.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Create an empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value; returns its generation-tagged key.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let e = &mut self.entries[idx as usize];
            debug_assert!(e.value.is_none());
            e.value = Some(value);
            ((e.generation as u64) << INDEX_BITS) | idx as u64
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(Entry {
                generation: 0,
                value: Some(value),
            });
            idx as u64
        }
    }

    /// The value for `key`, if it is still live.
    pub fn get(&self, key: u64) -> Option<&T> {
        let e = self.entries.get((key & INDEX_MASK) as usize)?;
        if e.generation as u64 != key >> INDEX_BITS {
            return None;
        }
        e.value.as_ref()
    }

    /// Mutable access to the value for `key`, if it is still live.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let e = self.entries.get_mut((key & INDEX_MASK) as usize)?;
        if e.generation as u64 != key >> INDEX_BITS {
            return None;
        }
        e.value.as_mut()
    }

    /// Remove and return the value for `key`. The slot's generation bumps,
    /// so the key (and any copy of it) stops resolving immediately.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let idx = (key & INDEX_MASK) as usize;
        let e = self.entries.get_mut(idx)?;
        if e.generation as u64 != key >> INDEX_BITS {
            return None;
        }
        let v = e.value.take()?;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        Some(v)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// How many spare buffers a [`BufPool`] retains. Enough for every message
/// a deeply pipelined fleet keeps in flight; beyond that, freeing is
/// cheaper than hoarding.
const POOL_CAP: usize = 4096;

/// A recycling pool of byte buffers.
#[derive(Default)]
pub struct BufPool {
    spare: Vec<Vec<u8>>,
}

impl BufPool {
    /// Create an empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// Take a cleared buffer (previous capacity retained when recycled).
    pub fn take(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Zero-capacity buffers (the `Vec::new`
    /// holes left by moves) and overflow beyond the cap are dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || self.spare.len() >= POOL_CAP {
            return;
        }
        buf.clear();
        self.spare.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get_mut(b).map(|v| *v), Some("b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove misses");
        assert_eq!(s.get(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_keys_do_not_alias_reused_slots() {
        let mut s: Slab<u32> = Slab::new();
        let k1 = s.insert(1);
        s.remove(k1);
        // LIFO reuse: the same slot index comes back with a new generation.
        let k2 = s.insert(2);
        assert_eq!(k1 & 0xFFFF_FFFF, k2 & 0xFFFF_FFFF, "slot reused");
        assert_ne!(k1, k2, "keys differ by generation");
        assert_eq!(s.get(k1), None, "stale key misses");
        assert_eq!(s.get(k2), Some(&2));
    }

    #[test]
    fn reuse_order_is_lifo_and_deterministic() {
        let mut s: Slab<u32> = Slab::new();
        let keys: Vec<u64> = (0..4).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        // Last freed (slot 3) is reused first.
        let k = s.insert(10);
        assert_eq!(k & 0xFFFF_FFFF, keys[3] & 0xFFFF_FFFF);
        let k = s.insert(11);
        assert_eq!(k & 0xFFFF_FFFF, keys[1] & 0xFFFF_FFFF);
    }

    #[test]
    fn buf_pool_recycles_capacity() {
        let mut p = BufPool::new();
        let mut b = p.take();
        b.extend_from_slice(&[1, 2, 3, 4]);
        let cap = b.capacity();
        p.put(b);
        let b2 = p.take();
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b2.capacity(), cap, "capacity survives recycling");
        // Zero-capacity holes are not pooled.
        p.put(Vec::new());
        assert_eq!(p.take().capacity(), 0);
    }
}
