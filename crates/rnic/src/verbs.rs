//! The RDMA verb set.
//!
//! The simulator implements the data-movement verbs of the RDMA
//! specification (READ/WRITE/SEND/RECV), the atomic extensions (CAS, ADD),
//! the Mellanox vendor *calc* verbs (MAX/MIN — §3.5 of the paper notes
//! inequality predicates need them), and the cross-channel synchronization
//! verbs WAIT and ENABLE that RedN builds its ordering modes from.

use crate::error::{Error, Result};

/// Verb opcodes as stored in the low 16 bits of a WQE's header word.
///
/// The numeric values matter: RedN conditionals CAS the entire 64-bit header
/// word (opcode + 48-bit id), so constructs compute expected/new words from
/// these encodings. `NOOP → WRITE` transmutation (Fig 4 of the paper) is a
/// CAS whose compare is `header(Noop, x)` and swap is `header(Write, x)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Opcode {
    /// No operation. Completes locally; the workhorse placeholder that
    /// self-modifying chains transmute into real verbs.
    Noop = 0,
    /// Two-sided message send; consumes a RECV at the responder.
    Send = 1,
    /// Receive; posted on receive queues only, consumed by SEND/WRITE_IMM.
    Recv = 2,
    /// One-sided remote write.
    Write = 3,
    /// One-sided remote write that also delivers 32-bit immediate data and
    /// consumes a RECV at the responder.
    WriteImm = 4,
    /// One-sided remote read.
    Read = 5,
    /// 8-byte compare-and-swap at the responder.
    Cas = 6,
    /// 8-byte fetch-and-add at the responder.
    FetchAdd = 7,
    /// Vendor calc verb: 8-byte max(operand, memory) at the responder.
    Max = 8,
    /// Vendor calc verb: 8-byte min(operand, memory) at the responder.
    Min = 9,
    /// Cross-channel: stall this queue until a CQ reaches a completion
    /// count ("completion ordering", Fig 2a).
    Wait = 10,
    /// Cross-channel: raise another queue's fetch limit ("doorbell
    /// ordering", Fig 2b). Managed queues only fetch WQEs below their
    /// enable limit, which is what permits in-place WQE modification.
    Enable = 11,
}

impl Opcode {
    /// Decode from the low 16 bits of a header word.
    pub fn from_u16(v: u16) -> Result<Opcode> {
        Ok(match v {
            0 => Opcode::Noop,
            1 => Opcode::Send,
            2 => Opcode::Recv,
            3 => Opcode::Write,
            4 => Opcode::WriteImm,
            5 => Opcode::Read,
            6 => Opcode::Cas,
            7 => Opcode::FetchAdd,
            8 => Opcode::Max,
            9 => Opcode::Min,
            10 => Opcode::Wait,
            11 => Opcode::Enable,
            _ => return Err(Error::InvalidWr("unknown opcode")),
        })
    }

    /// All opcodes, for exhaustive tests.
    pub const ALL: [Opcode; 12] = [
        Opcode::Noop,
        Opcode::Send,
        Opcode::Recv,
        Opcode::Write,
        Opcode::WriteImm,
        Opcode::Read,
        Opcode::Cas,
        Opcode::FetchAdd,
        Opcode::Max,
        Opcode::Min,
        Opcode::Wait,
        Opcode::Enable,
    ];

    /// Whether this is an atomic verb (serialized through the NIC's atomic
    /// engine — Table 3's 8.4 M ops/s ceiling).
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            Opcode::Cas | Opcode::FetchAdd | Opcode::Max | Opcode::Min
        )
    }

    /// Whether this is a vendor calc verb (requires
    /// [`crate::config::NicConfig::supports_calc`]).
    pub fn is_calc(self) -> bool {
        matches!(self, Opcode::Max | Opcode::Min)
    }

    /// Whether this verb uses the non-posted PCIe path (waits for a PCIe
    /// completion — the READ/atomic latency bump in Fig 7).
    pub fn is_nonposted(self) -> bool {
        matches!(self, Opcode::Read) || self.is_atomic()
    }

    /// Whether this verb carries payload toward the responder.
    pub fn is_posted_data(self) -> bool {
        matches!(self, Opcode::Send | Opcode::Write | Opcode::WriteImm)
    }

    /// Whether this is a cross-channel control verb.
    pub fn is_ctrl(self) -> bool {
        matches!(self, Opcode::Wait | Opcode::Enable)
    }

    /// Whether the verb belongs to the paper's "write WR" ordering class
    /// (SEND, WRITE, WRITE_IMM — totally ordered among themselves, §3.1).
    pub fn is_write_class(self) -> bool {
        matches!(self, Opcode::Send | Opcode::Write | Opcode::WriteImm)
    }

    /// Issue-cost class: read-class verbs (READ/atomics/calc) run at
    /// Table 3's READ rate, everything else at the WRITE rate.
    pub fn is_read_class(self) -> bool {
        self.is_nonposted()
    }
}

/// Table 2 accounting categories for RedN constructs:
/// `C` copy verbs, `A` atomic verbs, `E` WAIT/ENABLE verbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerbClass {
    /// Copy verbs: READ/WRITE/SEND/RECV/NOOP.
    Copy,
    /// Atomic verbs: CAS/ADD/MAX/MIN.
    Atomic,
    /// Ordering verbs: WAIT/ENABLE.
    Ordering,
}

impl Opcode {
    /// Classify for Table 2 accounting.
    pub fn class(self) -> VerbClass {
        if self.is_atomic() {
            VerbClass::Atomic
        } else if self.is_ctrl() {
            VerbClass::Ordering
        } else {
            VerbClass::Copy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trips() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u16(op as u16).unwrap(), op);
        }
        assert!(Opcode::from_u16(999).is_err());
    }

    #[test]
    fn classifications_are_consistent() {
        assert!(Opcode::Cas.is_atomic());
        assert!(Opcode::Max.is_calc());
        assert!(!Opcode::Cas.is_calc());
        assert!(Opcode::Read.is_nonposted());
        assert!(!Opcode::Write.is_nonposted());
        assert!(Opcode::Write.is_posted_data());
        assert!(Opcode::Wait.is_ctrl());
        assert!(Opcode::Send.is_write_class());
        assert!(!Opcode::Read.is_write_class());
        assert_eq!(Opcode::Noop.class(), VerbClass::Copy);
        assert_eq!(Opcode::FetchAdd.class(), VerbClass::Atomic);
        assert_eq!(Opcode::Enable.class(), VerbClass::Ordering);
    }

    #[test]
    fn atomic_verbs_are_read_class() {
        for op in Opcode::ALL {
            if op.is_atomic() {
                assert!(op.is_read_class());
            }
        }
        assert!(!Opcode::Send.is_read_class());
        assert!(!Opcode::Noop.is_read_class());
    }
}
