//! Per-NIC hardware state: processing units and serialized engines.
//!
//! ConnectX NICs "assign compute resources on a per port basis" (§5.1.3),
//! so PUs, the managed-fetch engine, the atomic engine and the link
//! serializer are all per-port. The PCIe bus is shared by both ports —
//! which is exactly why the paper's Table 4 shows dual-port 64 KB lookups
//! hitting a PCIe ceiling rather than doubling.

use crate::config::NicConfig;
use crate::engine::{FifoResource, PoolResource};
use crate::time::Time;

/// One simulated RNIC.
pub struct Nic {
    /// Hardware configuration (timing model).
    pub config: NicConfig,
    /// Processing units, one pool per port.
    pub pus: Vec<PoolResource>,
    /// Serialized managed-WQE fetch engine, per port.
    pub fetch_engine: Vec<FifoResource>,
    /// Serialized atomic engine, per port (Table 3's 8.4 M ops/s).
    pub atomic_engine: Vec<FifoResource>,
    /// Egress link serializer, per port (~92 Gbps usable).
    pub link_tx: Vec<FifoResource>,
    /// Shared PCIe bus (sustained-throughput resource).
    pub pcie_bus: FifoResource,
    /// Round-robin cursor for PU assignment, per port.
    pub next_pu: Vec<usize>,
    /// Verbs executed (all ports).
    pub stat_verbs: u64,
    /// Managed fetches performed.
    pub stat_managed_fetches: u64,
    /// Bytes pushed to the wire.
    pub stat_tx_bytes: u64,
}

impl Nic {
    /// Build NIC state from a configuration.
    pub fn new(config: NicConfig) -> Nic {
        let ports = config.ports;
        Nic {
            pus: (0..ports)
                .map(|_| PoolResource::new(config.pus_per_port))
                .collect(),
            fetch_engine: (0..ports).map(|_| FifoResource::new()).collect(),
            atomic_engine: (0..ports).map(|_| FifoResource::new()).collect(),
            link_tx: (0..ports).map(|_| FifoResource::new()).collect(),
            pcie_bus: FifoResource::new(),
            next_pu: vec![0; ports],
            stat_verbs: 0,
            stat_managed_fetches: 0,
            stat_tx_bytes: 0,
            config,
        }
    }

    /// Assign a PU for a new work queue on `port`: explicit pin or
    /// round-robin.
    pub fn assign_pu(&mut self, port: usize, pin: Option<usize>) -> usize {
        match pin {
            Some(pu) => {
                assert!(pu < self.config.pus_per_port, "PU index out of range");
                pu
            }
            None => {
                let pu = self.next_pu[port];
                self.next_pu[port] = (pu + 1) % self.config.pus_per_port;
                pu
            }
        }
    }

    /// Occupy the shared PCIe bus for a payload of `bytes`; returns the
    /// finish time. Zero-byte transfers are free.
    pub fn pcie_occupy(&mut self, now: Time, bytes: u64) -> Time {
        if bytes == 0 {
            return now;
        }
        self.pcie_bus
            .acquire(now, Time::transfer(bytes, self.config.pcie_bw_gbps))
    }

    /// Occupy a port's egress link; returns the finish time.
    pub fn link_occupy(&mut self, port: usize, now: Time, bytes: u64) -> Time {
        if bytes == 0 {
            return now;
        }
        self.stat_tx_bytes += bytes;
        self.link_tx[port].acquire(now, Time::transfer(bytes, self.config.ib_gbps))
    }

    /// Store-and-forward latency of one PCIe stage for `bytes`.
    pub fn pcie_stage(&self, bytes: u64) -> Time {
        Time::transfer(bytes, self.config.pcie_lat_gbps)
    }

    /// Store-and-forward latency of the wire for `bytes`.
    pub fn wire_stage(&self, bytes: u64) -> Time {
        Time::transfer(bytes, self.config.ib_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_port_resources_match_config() {
        let nic = Nic::new(NicConfig::connectx5().dual_port());
        assert_eq!(nic.pus.len(), 2);
        assert_eq!(nic.pus[0].len(), 8);
        assert_eq!(nic.fetch_engine.len(), 2);
        assert_eq!(nic.atomic_engine.len(), 2);
    }

    #[test]
    fn round_robin_and_pinned_pu_assignment() {
        let mut nic = Nic::new(NicConfig::connectx5());
        assert_eq!(nic.assign_pu(0, None), 0);
        assert_eq!(nic.assign_pu(0, None), 1);
        assert_eq!(nic.assign_pu(0, Some(5)), 5);
        // Pinning does not disturb the round-robin cursor.
        assert_eq!(nic.assign_pu(0, None), 2);
    }

    #[test]
    #[should_panic(expected = "PU index out of range")]
    fn pinning_out_of_range_panics() {
        let mut nic = Nic::new(NicConfig::connectx5());
        nic.assign_pu(0, Some(8));
    }

    #[test]
    fn zero_byte_transfers_are_free() {
        let mut nic = Nic::new(NicConfig::connectx5());
        let t = Time::from_us(3);
        assert_eq!(nic.pcie_occupy(t, 0), t);
        assert_eq!(nic.link_occupy(0, t, 0), t);
    }

    #[test]
    fn stage_latencies_scale_with_bytes() {
        let nic = Nic::new(NicConfig::connectx5());
        let small = nic.wire_stage(64);
        let big = nic.wire_stage(64 * 1024);
        assert!(big > small * 1000);
        // 64 KiB at 92 Gbps ≈ 5.7 us (Table 4's single-port ceiling).
        assert!((big.as_us_f64() - 5.7).abs() < 0.05);
        // 64 KiB over one PCIe 3.0 x16 stage ≈ 4.16 us.
        assert!((nic.pcie_stage(64 * 1024).as_us_f64() - 4.16).abs() < 0.05);
    }
}
