//! Error types for the simulator.

use crate::ids::{CqId, NodeId, QpId, WqId};
use std::fmt;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Everything that can go wrong when driving the simulated RNIC.
///
/// The variants mirror real `ibverbs` failure modes where one exists
/// (key violations, queue overflow, RNR) so code written against the
/// simulator carries over mentally to real hardware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// Referenced an entity that does not exist.
    UnknownEntity(&'static str, u32),
    /// Out-of-bounds or unallocated memory access.
    BadAddress {
        /// Node whose memory was accessed.
        node: NodeId,
        /// Faulting address.
        addr: u64,
        /// Access length.
        len: u64,
    },
    /// A local or remote key did not authorize the access
    /// (wrong key, wrong range, insufficient permissions, or the owning
    /// process died and the region was reclaimed).
    KeyViolation {
        /// Node whose memory was accessed.
        node: NodeId,
        /// The key presented.
        key: u32,
        /// Faulting address.
        addr: u64,
        /// Access length.
        len: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Work queue has no free WQE slots.
    WqFull(WqId),
    /// Completion queue overflowed.
    CqOverrun(CqId),
    /// Host memory arena exhausted.
    OutOfMemory(NodeId),
    /// QP is not connected (or was connected twice).
    BadQpState(QpId, &'static str),
    /// The verb is not supported by this NIC configuration (e.g. MAX on a
    /// NIC without calc support, WAIT on an Intel-style RNIC).
    Unsupported(&'static str),
    /// Malformed work request (bad SGE count, misaligned atomic, ...).
    InvalidWr(&'static str),
    /// A chain program was rejected by a static checker before anything
    /// was posted (the deploy-time verifier of `redn_core::ir`). Carries
    /// a full diagnostic naming the offending WQE.
    Verifier(String),
    /// A tenant's resource budget (processing units, ring slots,
    /// const-pool bytes) would be exceeded. Carries a diagnostic naming
    /// the tenant and the quota — admission control rejects the spec
    /// instead of letting the overrun surface as a neighbor's stall.
    Quota(String),
    /// A receiver had no RECV posted and the retry budget was exhausted
    /// (receiver-not-ready).
    RnrExhausted(QpId),
    /// The event budget was exhausted — the program may not terminate.
    /// Turing completeness has a price (halting is undecidable), so the
    /// simulator turns runaway programs into this error.
    EventBudgetExhausted(u64),
    /// An operation referenced a crashed process's resources.
    ProcessDead(u32),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownEntity(kind, id) => write!(f, "unknown {kind} id {id}"),
            Error::BadAddress { node, addr, len } => {
                write!(f, "bad address {addr:#x}+{len} on {node}")
            }
            Error::KeyViolation {
                node,
                key,
                addr,
                len,
                reason,
            } => write!(
                f,
                "key {key:#x} does not authorize {addr:#x}+{len} on {node}: {reason}"
            ),
            Error::WqFull(wq) => write!(f, "work queue {wq} full"),
            Error::CqOverrun(cq) => write!(f, "completion queue {cq} overrun"),
            Error::OutOfMemory(node) => write!(f, "out of simulated DRAM on {node}"),
            Error::BadQpState(qp, what) => write!(f, "{qp}: {what}"),
            Error::Unsupported(what) => write!(f, "unsupported on this NIC: {what}"),
            Error::InvalidWr(what) => write!(f, "invalid work request: {what}"),
            Error::Verifier(what) => write!(f, "chain program rejected by verifier: {what}"),
            Error::Quota(what) => write!(f, "tenant quota exceeded: {what}"),
            Error::RnrExhausted(qp) => {
                write!(f, "receiver not ready on {qp} (RNR retries exhausted)")
            }
            Error::EventBudgetExhausted(n) => write!(
                f,
                "simulation event budget ({n}) exhausted; offload program may not terminate"
            ),
            Error::ProcessDead(pid) => write!(f, "process {pid} is dead"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = Error::KeyViolation {
            node: NodeId(0),
            key: 0x10,
            addr: 0x1000,
            len: 8,
            reason: "rkey not registered",
        };
        let s = format!("{e}");
        assert!(s.contains("0x10"));
        assert!(s.contains("rkey not registered"));
        assert!(format!("{}", Error::WqFull(WqId(3))).contains("wq3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::OutOfMemory(NodeId(1)));
    }
}
