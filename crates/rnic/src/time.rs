//! Simulated time.
//!
//! The simulator uses a 64-bit picosecond clock. Picosecond granularity keeps
//! bandwidth arithmetic exact enough that throughput experiments (Table 4 of
//! the paper) are not distorted by rounding: a 64 B payload on a 92 Gbps link
//! takes 5.565 ns, which would round to 6 ns on a nanosecond clock — an 8%
//! error that compounds over millions of operations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// `Time` is deliberately a single type for both instants and durations —
/// the simulator's arithmetic is simple enough that the extra type safety of
/// a `Duration`/`Instant` split is not worth the conversion noise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Zero time — the simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The largest representable time (~213 simulated days).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000_000)
    }

    /// Construct from fractional microseconds (used for calibration
    /// constants quoted in the paper, e.g. "0.54 µs per doorbell-ordered
    /// WR").
    #[inline]
    pub fn from_us_f64(us: f64) -> Time {
        debug_assert!(us >= 0.0);
        Time((us * 1e6).round() as u64)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Time needed to move `bytes` across a link of `gbps` gigabits per
    /// second. Exact to the picosecond: `bytes * 8000 / gbps` ps.
    #[inline]
    pub fn transfer(bytes: u64, gbps: f64) -> Time {
        debug_assert!(gbps > 0.0);
        Time(((bytes as f64) * 8000.0 / gbps).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn fractional_us_round_trips() {
        let t = Time::from_us_f64(0.54);
        assert_eq!(t.as_ps(), 540_000);
        assert!((t.as_us_f64() - 0.54).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_is_exact() {
        // 64 B at 92 Gbps = 64*8000/92 ps = 5565.2 ps.
        let t = Time::transfer(64, 92.0);
        assert_eq!(t.as_ps(), 5565);
        // 64 KiB at 92 Gbps ≈ 5.699 µs (the paper's Table 4 ceiling).
        let t = Time::transfer(64 * 1024, 92.0);
        assert!((t.as_us_f64() - 5.699).abs() < 0.01);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(2);
        let b = Time::from_us(3);
        assert_eq!(a + b, Time::from_us(5));
        assert_eq!(b - a, Time::from_us(1));
        assert_eq!(a * 3, Time::from_us(6));
        assert_eq!(b / 3, Time::from_us(1));
        assert_eq!(Time::from_us(1).saturating_sub(b), Time::ZERO);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_ns(100)), "100.000ns");
        assert_eq!(format!("{}", Time::from_us(100)), "100.000us");
        assert_eq!(format!("{}", Time::from_ms(100)), "100.000ms");
        assert_eq!(format!("{}", Time::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = (1..=4).map(Time::from_us).sum();
        assert_eq!(total, Time::from_us(10));
    }
}
