//! # rnic-sim — a cycle-approximate simulator of a commodity RDMA NIC
//!
//! This crate is the hardware substrate for the RedN reproduction
//! ("RDMA is Turing complete, we just did not know it yet!", NSDI '22).
//! The paper's artifact runs on Mellanox ConnectX-5 InfiniBand NICs; this
//! simulator reproduces the architectural properties that RedN exploits:
//!
//! * **Work queues live in host memory as raw bytes.** Work-queue entries
//!   (WQEs) are serialized into simulated DRAM, and the NIC *fetches* them
//!   over a simulated PCIe link before executing them. Because any RDMA verb
//!   can write to the memory that holds a WQE, programs can modify their own
//!   instructions — the basis of RedN's self-modifying chains.
//! * **Prefetching and managed queues.** Unmanaged queues prefetch WQE
//!   batches, so post-fetch modifications are lost (the consistency hazard
//!   described in §3.1 of the paper). Managed queues disable prefetch and
//!   only advance when an [`Opcode::Enable`](verbs::Opcode) verb raises
//!   their fetch limit.
//! * **Cross-channel synchronization.** `WAIT` parks a queue until a
//!   completion queue reaches a count; `ENABLE` releases WQEs on another
//!   queue — together they implement the paper's *completion* and
//!   *doorbell* ordering modes.
//! * **A calibrated timing model.** Doorbell MMIO, WQE fetch, per-verb
//!   execution, PCIe posted/non-posted transactions, the serialized atomic
//!   engine, link bandwidth and per-port processing units are modeled as
//!   discrete-event resources; the constants are calibrated against the
//!   paper's own microbenchmarks (Fig 7, Fig 8, Tables 1/3/4).
//! * **A host model.** CPU cores, polling vs event-driven threads, context
//!   switches, process crashes and OS panics — needed for the paper's
//!   two-sided baselines, contention and failure-resiliency experiments.
//!
//! The entry point is [`sim::Simulator`]. See the `redn-core` crate for the
//! programming abstractions built on top.
//!
//! ## Quick taste
//!
//! ```
//! use rnic_sim::prelude::*;
//!
//! let mut sim = Simulator::new(SimConfig::default());
//! let a = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
//! let b = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
//! sim.connect_nodes(a, b, LinkConfig::back_to_back());
//!
//! // Allocate and register a buffer on the server.
//! let buf = sim.alloc(b, 64, 8).unwrap();
//! let mr = sim.register_mr(b, buf, 64, Access::all()).unwrap();
//!
//! // Client queue pair connected to the server.
//! let cq = sim.create_cq(a, 16).unwrap();
//! let qp = sim.create_qp(a, QpConfig::new(cq)).unwrap();
//! let rcq = sim.create_cq(b, 16).unwrap();
//! let rqp = sim.create_qp(b, QpConfig::new(rcq)).unwrap();
//! sim.connect_qps(qp, rqp).unwrap();
//!
//! // One-sided write of 8 bytes.
//! let src = sim.alloc(a, 8, 8).unwrap();
//! let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();
//! sim.mem_write_u64(a, src, 0xdead_beef).unwrap();
//! let wr = WorkRequest::write(src, smr.lkey, 8, buf, mr.rkey).signaled();
//! sim.post_send(qp, wr).unwrap();
//! sim.run();
//! assert_eq!(sim.mem_read_u64(b, buf).unwrap(), 0xdead_beef);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cq;
pub mod engine;
pub mod error;
pub mod host;
pub mod ids;
pub mod mem;
pub mod net;
pub mod nic;
pub mod qp;
pub mod rate;
pub mod sim;
pub mod slab;
pub mod time;
pub mod trace;
pub mod verbs;
pub mod wq;
pub mod wqe;

/// Convenience re-exports covering the whole public surface most users need.
pub mod prelude {
    pub use crate::config::{Generation, HostConfig, LinkConfig, NicConfig, SimConfig};
    pub use crate::cq::Cqe;
    pub use crate::error::{Error, Result};
    pub use crate::ids::{CqId, MrKey, NodeId, ProcessId, QpId, WqId};
    pub use crate::mem::{Access, MemoryRegion};
    pub use crate::qp::QpConfig;
    pub use crate::sim::Simulator;
    pub use crate::time::Time;
    pub use crate::verbs::Opcode;
    pub use crate::wqe::{WorkRequest, Wqe, WQE_SIZE};
}
