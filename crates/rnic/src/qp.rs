//! Queue pairs: the RC (reliable connection) endpoints.
//!
//! A QP bundles a send queue, a receive queue and two CQs. RedN programs
//! span several QPs on the server: client-facing QPs receive triggers and
//! carry responses, while *loopback* QPs (connected to a peer on the same
//! node) let the NIC read, write and CAS the server's own memory — including
//! the WQ buffers themselves, which is how chains self-modify.

use crate::ids::{CqId, NodeId, QpId, WqId};
use std::collections::VecDeque;

/// Configuration for creating a QP.
#[derive(Clone, Copy, Debug)]
pub struct QpConfig {
    /// CQ receiving send-side completions.
    pub send_cq: CqId,
    /// CQ receiving receive-side completions (defaults to `send_cq`).
    pub recv_cq: CqId,
    /// Send-queue depth in WQE slots.
    pub sq_depth: u32,
    /// Receive-queue depth in WQE slots.
    pub rq_depth: u32,
    /// Managed send queue: prefetch disabled, fetch gated by ENABLE —
    /// required for any queue whose WQEs get modified in place
    /// ("initialized with a special 'managed' flag", §5 "NIC setup").
    pub sq_managed: bool,
    /// Port to bind to (0-based; must be < NIC's port count).
    pub port: usize,
    /// Pin the SQ to a specific processing unit on that port. RedN uses
    /// explicit placement to parallelize independent chains (§3.5
    /// "Parallelism", Fig 11's RedN-Parallel). `None` = round-robin.
    pub pu: Option<usize>,
}

impl QpConfig {
    /// Reasonable defaults: both CQs the same, 128-deep queues, unmanaged,
    /// port 0, round-robin PU.
    pub fn new(cq: CqId) -> QpConfig {
        QpConfig {
            send_cq: cq,
            recv_cq: cq,
            sq_depth: 128,
            rq_depth: 128,
            sq_managed: false,
            port: 0,
            pu: None,
        }
    }

    /// Use a distinct receive CQ.
    pub fn recv_cq(mut self, cq: CqId) -> QpConfig {
        self.recv_cq = cq;
        self
    }

    /// Set send-queue depth.
    pub fn sq_depth(mut self, depth: u32) -> QpConfig {
        self.sq_depth = depth;
        self
    }

    /// Set receive-queue depth.
    pub fn rq_depth(mut self, depth: u32) -> QpConfig {
        self.rq_depth = depth;
        self
    }

    /// Put the send queue in managed (no-prefetch) mode.
    pub fn managed(mut self) -> QpConfig {
        self.sq_managed = true;
        self
    }

    /// Bind to a port.
    pub fn on_port(mut self, port: usize) -> QpConfig {
        self.port = port;
        self
    }

    /// Pin the send queue to a processing unit.
    pub fn on_pu(mut self, pu: usize) -> QpConfig {
        self.pu = Some(pu);
        self
    }
}

/// A queue pair.
#[derive(Debug)]
pub struct QueuePair {
    /// This QP's id.
    pub id: QpId,
    /// Owning node.
    pub node: NodeId,
    /// Send queue id.
    pub sq: WqId,
    /// Receive queue id.
    pub rq: WqId,
    /// Send-side CQ.
    pub send_cq: CqId,
    /// Receive-side CQ.
    pub recv_cq: CqId,
    /// Connected peer QP (None until `connect_qps`).
    pub peer: Option<QpId>,
    /// Bound port.
    pub port: usize,
    /// Monotonic count of RECVs consumed (the RQ's execution pointer).
    pub recv_consumed: u64,
    /// In-flight message keys waiting for a RECV (receiver-not-ready
    /// queue; RC retries delivery when a RECV is posted).
    pub rnr_queue: VecDeque<u64>,
    /// Set when the owning process died and the OS reclaimed this QP's
    /// resources. Arrivals fail, the queues freeze (§5.6).
    pub dead: bool,
}

impl QueuePair {
    /// Create an unconnected QP.
    pub fn new(
        id: QpId,
        node: NodeId,
        sq: WqId,
        rq: WqId,
        send_cq: CqId,
        recv_cq: CqId,
        port: usize,
    ) -> QueuePair {
        QueuePair {
            id,
            node,
            sq,
            rq,
            send_cq,
            recv_cq,
            peer: None,
            port,
            recv_consumed: 0,
            rnr_queue: VecDeque::new(),
            dead: false,
        }
    }

    /// Whether this QP is connected to a peer on the same node (loopback).
    /// Loopback traffic skips the wire but still crosses PCIe.
    pub fn is_loopback_with(&self, peer_node: NodeId) -> bool {
        self.node == peer_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_chains() {
        let cfg = QpConfig::new(CqId(1))
            .recv_cq(CqId(2))
            .sq_depth(64)
            .rq_depth(32)
            .managed()
            .on_port(1)
            .on_pu(3);
        assert_eq!(cfg.send_cq, CqId(1));
        assert_eq!(cfg.recv_cq, CqId(2));
        assert_eq!(cfg.sq_depth, 64);
        assert_eq!(cfg.rq_depth, 32);
        assert!(cfg.sq_managed);
        assert_eq!(cfg.port, 1);
        assert_eq!(cfg.pu, Some(3));
    }

    #[test]
    fn default_config_shares_cq() {
        let cfg = QpConfig::new(CqId(9));
        assert_eq!(cfg.send_cq, cfg.recv_cq);
        assert!(!cfg.sq_managed);
        assert_eq!(cfg.pu, None);
    }

    #[test]
    fn loopback_detection() {
        let qp = QueuePair::new(QpId(0), NodeId(3), WqId(0), WqId(1), CqId(0), CqId(0), 0);
        assert!(qp.is_loopback_with(NodeId(3)));
        assert!(!qp.is_loopback_with(NodeId(4)));
    }
}
