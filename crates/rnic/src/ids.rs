//! Strongly-typed identifiers for simulated entities.
//!
//! Every object in the simulator (nodes, NICs, queue pairs, queues,
//! completion queues, memory regions, processes) is referred to by a small
//! copyable ID instead of a reference. This keeps the discrete-event core
//! free of borrow-checker knots: all state lives in arenas owned by
//! [`crate::sim::Simulator`], and events carry IDs.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index into the owning arena.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A host machine (one simulated server with DRAM, CPUs and one NIC).
    NodeId,
    "node"
);
id_type!(
    /// A queue pair (send queue + receive queue bound to two CQs).
    QpId,
    "qp"
);
id_type!(
    /// A work queue (either the SQ or RQ half of a QP).
    WqId,
    "wq"
);
id_type!(
    /// A completion queue.
    CqId,
    "cq"
);
id_type!(
    /// A process on a host. Memory regions are owned by processes so the
    /// failure-resiliency experiments (§5.6) can model what the OS frees on
    /// a crash.
    ProcessId,
    "pid"
);

/// A registered memory region key pair. `lkey` authorizes local access by
/// the NIC on behalf of the owning process; `rkey` authorizes remote access.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MrKey {
    /// Local key.
    pub lkey: u32,
    /// Remote key.
    pub rkey: u32,
}

impl fmt::Debug for MrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr(l={:#x},r={:#x})", self.lkey, self.rkey)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{:?}", NodeId(3)), "node3");
        assert_eq!(format!("{}", QpId(1)), "qp1");
        assert_eq!(format!("{:?}", WqId(7)), "wq7");
        assert_eq!(format!("{}", CqId(0)), "cq0");
        assert_eq!(format!("{:?}", ProcessId(9)), "pid9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(WqId(1));
        set.insert(WqId(2));
        assert!(set.contains(&WqId(1)));
        assert!(WqId(1) < WqId(2));
        assert_eq!(WqId(4).index(), 4);
    }
}
