//! Work-queue entry (WQE) format.
//!
//! WQEs are stored *serialized* in simulated host memory, 64 bytes each, and
//! the NIC decodes them at fetch time. The layout is the contract that makes
//! RedN's self-modifying programs possible: constructs compute the raw
//! addresses of individual WQE fields and aim verbs at them.
//!
//! ## Layout (64 bytes, little-endian)
//!
//! | offset | field | notes |
//! |---|---|---|
//! | 0  | `header: u64` | opcode in bits 0..16, 48-bit `id` in bits 16..64 |
//! | 8  | `flags: u32` + reserved `u32` | signaled, wait-prev fence, SGL |
//! | 16 | `local_addr: u64` | source/sink buffer, or SGE table if SGL |
//! | 24 | `lkey: u32`, `length: u32` | |
//! | 32 | `remote_addr: u64` | one-sided target |
//! | 40 | `rkey: u32`, `imm_or_target: u32` | immediate data, or WAIT/ENABLE target queue |
//! | 48 | `operand: u64` | CAS compare / ADD addend / MAX-MIN operand / WAIT-ENABLE count |
//! | 56 | `swap: u64` | CAS swap value |
//!
//! The header word is the key trick (paper §3.3, Fig 4): because the opcode
//! and the free-form `id` share one 64-bit word, a single CAS can
//! *simultaneously* compare a 48-bit operand stashed in `id` and, on
//! success, replace the opcode — that is RedN's conditional branch, and it
//! is why the paper's Table 2 lists a 48-bit operand limit.
//!
//! `operand` doubles as the WAIT/ENABLE count. It is a full 64-bit word so
//! the WQ-recycling fix-up (§3.4) — a fetch-and-add that bumps the
//! monotonically increasing `wqe_count` — lands on an 8-byte-aligned field,
//! as RDMA atomics require.

use crate::error::{Error, Result};
use crate::ids::{CqId, WqId};
use crate::verbs::Opcode;

/// Size of one serialized WQE in bytes.
pub const WQE_SIZE: u64 = 64;

/// Byte offset of the header word (opcode + id) within a WQE.
pub const OFF_HEADER: u64 = 0;
/// Byte offset of the flags word.
pub const OFF_FLAGS: u64 = 8;
/// Byte offset of the local address / SGE table pointer.
pub const OFF_LOCAL_ADDR: u64 = 16;
/// Byte offset of the local key.
pub const OFF_LKEY: u64 = 24;
/// Byte offset of the length / SGE count.
pub const OFF_LENGTH: u64 = 28;
/// Byte offset of the remote address.
pub const OFF_REMOTE_ADDR: u64 = 32;
/// Byte offset of the remote key.
pub const OFF_RKEY: u64 = 40;
/// Byte offset of the immediate / WAIT-ENABLE target field.
pub const OFF_IMM: u64 = 44;
/// Byte offset of the operand (CAS compare, ADD addend, WAIT/ENABLE count).
pub const OFF_OPERAND: u64 = 48;
/// Byte offset of the CAS swap value.
pub const OFF_SWAP: u64 = 56;

/// Flag: generate a CQE on this CQ when the WQE completes.
pub const FLAG_SIGNALED: u32 = 1 << 0;
/// Flag: do not start executing until the *previous* WQE in this queue has
/// completed — the paper's *completion ordering* (Fig 2a) within one queue.
pub const FLAG_WAIT_PREV: u32 = 1 << 1;
/// Flag: `local_addr` points to a scatter/gather table; `length` holds the
/// entry count (max [`crate::config::NicConfig::max_recv_sge`]).
pub const FLAG_SGL: u32 = 1 << 2;

/// Mask for the 48-bit id stored in the header word.
pub const ID_MASK: u64 = 0xFFFF_FFFF_FFFF;

/// Compose a header word from an opcode and a 48-bit id.
///
/// This is what RedN conditionals CAS against: `header(Noop, x)` as the
/// compare, `header(Write, x)` as the swap (Fig 4).
#[inline]
pub fn header_word(op: Opcode, id: u64) -> u64 {
    (op as u16 as u64) | ((id & ID_MASK) << 16)
}

/// Split a header word into opcode bits and id.
#[inline]
pub fn split_header(word: u64) -> (u16, u64) {
    (word as u16, word >> 16)
}

/// A decoded work-queue entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wqe {
    /// Verb to execute.
    pub opcode: Opcode,
    /// Free-form 48-bit field sharing the header word with the opcode.
    /// "This field can be manipulated freely without changing the behavior
    /// of the WR, allowing us to use it to store x" (§3.3).
    pub id: u64,
    /// Flag bits ([`FLAG_SIGNALED`], [`FLAG_WAIT_PREV`], [`FLAG_SGL`]).
    pub flags: u32,
    /// Local buffer (or SGE table address when [`FLAG_SGL`] is set).
    pub local_addr: u64,
    /// Local key authorizing `local_addr`.
    pub lkey: u32,
    /// Transfer length in bytes (or SGE entry count when SGL).
    pub length: u32,
    /// Remote address for one-sided verbs.
    pub remote_addr: u64,
    /// Remote key authorizing `remote_addr`.
    pub rkey: u32,
    /// Immediate data (WRITE_IMM) or target queue id (WAIT → CQ,
    /// ENABLE → WQ).
    pub imm_or_target: u32,
    /// CAS compare / ADD addend / MAX-MIN operand / WAIT-ENABLE count.
    pub operand: u64,
    /// CAS swap value.
    pub swap: u64,
}

impl Default for Wqe {
    fn default() -> Wqe {
        Wqe {
            opcode: Opcode::Noop,
            id: 0,
            flags: 0,
            local_addr: 0,
            lkey: 0,
            length: 0,
            remote_addr: 0,
            rkey: 0,
            imm_or_target: 0,
            operand: 0,
            swap: 0,
        }
    }
}

impl Wqe {
    /// Serialize to the 64-byte wire format.
    pub fn encode(&self) -> [u8; WQE_SIZE as usize] {
        let mut b = [0u8; WQE_SIZE as usize];
        b[0..8].copy_from_slice(&header_word(self.opcode, self.id).to_le_bytes());
        b[8..12].copy_from_slice(&self.flags.to_le_bytes());
        b[16..24].copy_from_slice(&self.local_addr.to_le_bytes());
        b[24..28].copy_from_slice(&self.lkey.to_le_bytes());
        b[28..32].copy_from_slice(&self.length.to_le_bytes());
        b[32..40].copy_from_slice(&self.remote_addr.to_le_bytes());
        b[40..44].copy_from_slice(&self.rkey.to_le_bytes());
        b[44..48].copy_from_slice(&self.imm_or_target.to_le_bytes());
        b[48..56].copy_from_slice(&self.operand.to_le_bytes());
        b[56..64].copy_from_slice(&self.swap.to_le_bytes());
        b
    }

    /// Decode from the 64-byte wire format. Fails on an unknown opcode —
    /// the simulated equivalent of the NIC raising a local protection
    /// fault on a corrupted WQE.
    pub fn decode(b: &[u8]) -> Result<Wqe> {
        if b.len() < WQE_SIZE as usize {
            return Err(Error::InvalidWr("short WQE buffer"));
        }
        let word = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let (op, id) = split_header(word);
        Ok(Wqe {
            opcode: Opcode::from_u16(op)?,
            id,
            flags: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            local_addr: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            lkey: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            length: u32::from_le_bytes(b[28..32].try_into().unwrap()),
            remote_addr: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[40..44].try_into().unwrap()),
            imm_or_target: u32::from_le_bytes(b[44..48].try_into().unwrap()),
            operand: u64::from_le_bytes(b[48..56].try_into().unwrap()),
            swap: u64::from_le_bytes(b[56..64].try_into().unwrap()),
        })
    }

    /// Whether the signaled flag is set.
    pub fn signaled(&self) -> bool {
        self.flags & FLAG_SIGNALED != 0
    }

    /// Whether the wait-prev (completion-ordering) flag is set.
    pub fn wait_prev(&self) -> bool {
        self.flags & FLAG_WAIT_PREV != 0
    }

    /// Whether the local buffer is a scatter/gather table.
    pub fn is_sgl(&self) -> bool {
        self.flags & FLAG_SGL != 0
    }
}

/// One scatter/gather entry: 16 bytes in memory
/// (`addr: u64, lkey: u32, len: u32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sge {
    /// Target (scatter) or source (gather) address.
    pub addr: u64,
    /// Key authorizing the access.
    pub lkey: u32,
    /// Bytes to scatter/gather at this entry.
    pub len: u32,
}

/// Size of one serialized SGE.
pub const SGE_SIZE: u64 = 16;

impl Sge {
    /// Serialize to 16 bytes.
    pub fn encode(&self) -> [u8; SGE_SIZE as usize] {
        let mut b = [0u8; SGE_SIZE as usize];
        b[0..8].copy_from_slice(&self.addr.to_le_bytes());
        b[8..12].copy_from_slice(&self.lkey.to_le_bytes());
        b[12..16].copy_from_slice(&self.len.to_le_bytes());
        b
    }

    /// Decode from 16 bytes.
    pub fn decode(b: &[u8]) -> Result<Sge> {
        if b.len() < SGE_SIZE as usize {
            return Err(Error::InvalidWr("short SGE buffer"));
        }
        Ok(Sge {
            addr: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            lkey: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            len: u32::from_le_bytes(b[12..16].try_into().unwrap()),
        })
    }
}

/// A user-facing work request: a thin, ergonomic builder over [`Wqe`].
///
/// ```
/// use rnic_sim::wqe::WorkRequest;
/// let wr = WorkRequest::write(0x1000, 0x10, 64, 0x2000, 0x20)
///     .signaled()
///     .with_id(42);
/// assert_eq!(wr.wqe.id, 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkRequest {
    /// The WQE this request lowers to.
    pub wqe: Wqe,
}

impl WorkRequest {
    /// A NOOP — completes without side effects. The placeholder verb that
    /// conditionals transmute (Fig 4).
    pub fn noop() -> WorkRequest {
        WorkRequest {
            wqe: Wqe::default(),
        }
    }

    /// One-sided write of `len` bytes from `(laddr, lkey)` to
    /// `(raddr, rkey)` on the connected peer.
    pub fn write(laddr: u64, lkey: u32, len: u32, raddr: u64, rkey: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Write,
                local_addr: laddr,
                lkey,
                length: len,
                remote_addr: raddr,
                rkey,
                ..Wqe::default()
            },
        }
    }

    /// One-sided write carrying 32-bit immediate data; consumes a RECV at
    /// the responder and surfaces `imm` in its completion.
    pub fn write_imm(
        laddr: u64,
        lkey: u32,
        len: u32,
        raddr: u64,
        rkey: u32,
        imm: u32,
    ) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::WriteImm,
                local_addr: laddr,
                lkey,
                length: len,
                remote_addr: raddr,
                rkey,
                imm_or_target: imm,
                ..Wqe::default()
            },
        }
    }

    /// One-sided read of `len` bytes from `(raddr, rkey)` into
    /// `(laddr, lkey)`.
    pub fn read(laddr: u64, lkey: u32, len: u32, raddr: u64, rkey: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Read,
                local_addr: laddr,
                lkey,
                length: len,
                remote_addr: raddr,
                rkey,
                ..Wqe::default()
            },
        }
    }

    /// One-sided read scattering the response across an SGE table of
    /// `count` entries at `table_addr`. RedN's hash lookup (Fig 9) uses
    /// this to land one bucket READ in several WQE fields at once.
    pub fn read_sgl(table_addr: u64, count: u32, raddr: u64, rkey: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Read,
                flags: FLAG_SGL,
                local_addr: table_addr,
                length: count,
                remote_addr: raddr,
                rkey,
                ..Wqe::default()
            },
        }
    }

    /// Two-sided send of `len` bytes from `(laddr, lkey)`.
    pub fn send(laddr: u64, lkey: u32, len: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Send,
                local_addr: laddr,
                lkey,
                length: len,
                ..Wqe::default()
            },
        }
    }

    /// Receive into a single buffer.
    pub fn recv(laddr: u64, lkey: u32, len: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Recv,
                local_addr: laddr,
                lkey,
                length: len,
                ..Wqe::default()
            },
        }
    }

    /// Receive scattering into an SGE table of `count` entries at
    /// `table_addr`. This is how RedN injects client arguments directly
    /// into posted WQEs (Fig 3): scatter entries aim at WQE fields.
    pub fn recv_sgl(table_addr: u64, count: u32) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Recv,
                flags: FLAG_SGL,
                local_addr: table_addr,
                length: count,
                ..Wqe::default()
            },
        }
    }

    /// Compare-and-swap 8 bytes at `(raddr, rkey)`. The old value is
    /// written back to `(result_addr, result_lkey)` unless `result_addr`
    /// is 0 (RedN chains usually discard it).
    pub fn cas(
        raddr: u64,
        rkey: u32,
        compare: u64,
        swap: u64,
        result_addr: u64,
        result_lkey: u32,
    ) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Cas,
                local_addr: result_addr,
                lkey: result_lkey,
                length: 8,
                remote_addr: raddr,
                rkey,
                operand: compare,
                swap,
                ..Wqe::default()
            },
        }
    }

    /// Fetch-and-add 8 bytes at `(raddr, rkey)`.
    pub fn fetch_add(
        raddr: u64,
        rkey: u32,
        add: u64,
        result_addr: u64,
        result_lkey: u32,
    ) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::FetchAdd,
                local_addr: result_addr,
                lkey: result_lkey,
                length: 8,
                remote_addr: raddr,
                rkey,
                operand: add,
                ..Wqe::default()
            },
        }
    }

    /// Vendor calc: `mem = max(mem, operand)` at `(raddr, rkey)`.
    pub fn max(raddr: u64, rkey: u32, operand: u64) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Max,
                length: 8,
                remote_addr: raddr,
                rkey,
                operand,
                ..Wqe::default()
            },
        }
    }

    /// Vendor calc: `mem = min(mem, operand)` at `(raddr, rkey)`.
    pub fn min(raddr: u64, rkey: u32, operand: u64) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Min,
                length: 8,
                remote_addr: raddr,
                rkey,
                operand,
                ..Wqe::default()
            },
        }
    }

    /// Stall this queue until `cq` has generated at least `count`
    /// completions since creation (counts are monotonic — the wqe_count
    /// semantics of §3.4).
    pub fn wait(cq: CqId, count: u64) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Wait,
                imm_or_target: cq.0,
                operand: count,
                ..Wqe::default()
            },
        }
    }

    /// Raise `wq`'s fetch limit to `count` WQEs (absolute, monotonic).
    pub fn enable(wq: WqId, count: u64) -> WorkRequest {
        WorkRequest {
            wqe: Wqe {
                opcode: Opcode::Enable,
                imm_or_target: wq.0,
                operand: count,
                ..Wqe::default()
            },
        }
    }

    /// Request a completion for this WQE.
    pub fn signaled(mut self) -> WorkRequest {
        self.wqe.flags |= FLAG_SIGNALED;
        self
    }

    /// Gate execution on the previous WQE's completion (completion
    /// ordering within a queue).
    pub fn wait_prev(mut self) -> WorkRequest {
        self.wqe.flags |= FLAG_WAIT_PREV;
        self
    }

    /// Set the free-form 48-bit id (conditional operand storage).
    pub fn with_id(mut self, id: u64) -> WorkRequest {
        self.wqe.id = id & ID_MASK;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_word_packs_opcode_and_id() {
        let w = header_word(Opcode::Write, 0xABCD);
        let (op, id) = split_header(w);
        assert_eq!(op, Opcode::Write as u16);
        assert_eq!(id, 0xABCD);
        // id is truncated to 48 bits.
        let w = header_word(Opcode::Noop, u64::MAX);
        let (_, id) = split_header(w);
        assert_eq!(id, ID_MASK);
    }

    #[test]
    fn conditional_transmutation_math() {
        // The Fig 4 trick: CAS(header(Noop, x) -> header(Write, x))
        // succeeds iff the stored id equals x.
        let x = 0x1234_5678_9ABC & ID_MASK;
        let stored = header_word(Opcode::Noop, x);
        let compare = header_word(Opcode::Noop, x);
        let swap = header_word(Opcode::Write, x);
        assert_eq!(stored, compare);
        let after = if stored == compare { swap } else { stored };
        let (op, id) = split_header(after);
        assert_eq!(op, Opcode::Write as u16);
        assert_eq!(id, x);
        // Mismatch leaves the NOOP in place.
        let stored2 = header_word(Opcode::Noop, x ^ 1);
        assert_ne!(stored2, compare);
    }

    #[test]
    fn encode_decode_round_trip() {
        let wqe = Wqe {
            opcode: Opcode::Cas,
            id: 0x7777,
            flags: FLAG_SIGNALED | FLAG_WAIT_PREV,
            local_addr: 0x1_2345,
            lkey: 9,
            length: 8,
            remote_addr: 0xDEAD_BEE0,
            rkey: 11,
            imm_or_target: 3,
            operand: 0xAAAA_BBBB_CCCC_DDDD,
            swap: 0x1111_2222_3333_4444,
        };
        let bytes = wqe.encode();
        assert_eq!(Wqe::decode(&bytes).unwrap(), wqe);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut bytes = Wqe::default().encode();
        bytes[0] = 0xFF; // unknown opcode 0x..FF
        bytes[1] = 0xFF;
        assert!(Wqe::decode(&bytes).is_err());
        assert!(Wqe::decode(&bytes[..32]).is_err());
    }

    #[test]
    fn field_offsets_match_encoding() {
        let wqe = Wqe {
            opcode: Opcode::Read,
            id: 0x42,
            local_addr: 0x1111,
            length: 0x2222,
            remote_addr: 0x3333,
            rkey: 0x44,
            operand: 0x5555,
            swap: 0x6666,
            ..Wqe::default()
        };
        let b = wqe.encode();
        let at_u64 =
            |off: u64| u64::from_le_bytes(b[off as usize..off as usize + 8].try_into().unwrap());
        let at_u32 =
            |off: u64| u32::from_le_bytes(b[off as usize..off as usize + 4].try_into().unwrap());
        assert_eq!(at_u64(OFF_HEADER), header_word(Opcode::Read, 0x42));
        assert_eq!(at_u64(OFF_LOCAL_ADDR), 0x1111);
        assert_eq!(at_u32(OFF_LENGTH), 0x2222);
        assert_eq!(at_u64(OFF_REMOTE_ADDR), 0x3333);
        assert_eq!(at_u32(OFF_RKEY), 0x44);
        assert_eq!(at_u64(OFF_OPERAND), 0x5555);
        assert_eq!(at_u64(OFF_SWAP), 0x6666);
    }

    #[test]
    fn sge_round_trip() {
        let sge = Sge {
            addr: 0xABCD,
            lkey: 7,
            len: 128,
        };
        assert_eq!(Sge::decode(&sge.encode()).unwrap(), sge);
        assert!(Sge::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn builders_set_expected_fields() {
        let wr = WorkRequest::write(1, 2, 3, 4, 5);
        assert_eq!(wr.wqe.opcode, Opcode::Write);
        assert_eq!((wr.wqe.local_addr, wr.wqe.lkey, wr.wqe.length), (1, 2, 3));
        assert_eq!((wr.wqe.remote_addr, wr.wqe.rkey), (4, 5));

        let wr = WorkRequest::cas(8, 9, 10, 11, 0, 0).signaled();
        assert_eq!(wr.wqe.opcode, Opcode::Cas);
        assert_eq!((wr.wqe.operand, wr.wqe.swap), (10, 11));
        assert!(wr.wqe.signaled());

        let wr = WorkRequest::wait(CqId(5), 77);
        assert_eq!(wr.wqe.imm_or_target, 5);
        assert_eq!(wr.wqe.operand, 77);

        let wr = WorkRequest::enable(WqId(6), 88).wait_prev();
        assert_eq!(wr.wqe.imm_or_target, 6);
        assert!(wr.wqe.wait_prev());

        let wr = WorkRequest::recv_sgl(0x100, 4);
        assert!(wr.wqe.is_sgl());
        assert_eq!(wr.wqe.length, 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_opcode() -> impl Strategy<Value = Opcode> {
        prop::sample::select(Opcode::ALL.to_vec())
    }

    proptest! {
        #[test]
        fn wqe_encode_decode_round_trips(
            opcode in arb_opcode(),
            id in 0u64..=ID_MASK,
            flags in 0u32..8,
            local_addr in any::<u64>(),
            lkey in any::<u32>(),
            length in any::<u32>(),
            remote_addr in any::<u64>(),
            rkey in any::<u32>(),
            imm in any::<u32>(),
            operand in any::<u64>(),
            swap in any::<u64>(),
        ) {
            let wqe = Wqe {
                opcode, id, flags, local_addr, lkey, length,
                remote_addr, rkey, imm_or_target: imm, operand, swap,
            };
            let decoded = Wqe::decode(&wqe.encode()).unwrap();
            prop_assert_eq!(decoded, wqe);
        }

        #[test]
        fn header_word_is_bijective_on_48_bits(
            opcode in arb_opcode(),
            id in 0u64..=ID_MASK,
        ) {
            let w = header_word(opcode, id);
            let (op, got_id) = split_header(w);
            prop_assert_eq!(op, opcode as u16);
            prop_assert_eq!(got_id, id);
        }

        #[test]
        fn sge_encode_decode_round_trips(
            addr in any::<u64>(),
            lkey in any::<u32>(),
            len in any::<u32>(),
        ) {
            let sge = Sge { addr, lkey, len };
            prop_assert_eq!(Sge::decode(&sge.encode()).unwrap(), sge);
        }
    }
}
