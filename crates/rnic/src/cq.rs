//! Completion queues.
//!
//! Besides their classical role (reporting work completions to the host),
//! CQs are RedN's synchronization variables: the WAIT verb parks a work
//! queue until a CQ's *monotonic completion count* reaches a threshold.
//! That count never resets — the wqe_count fix-ups of §3.4 exist precisely
//! because of this monotonicity.

use crate::ids::{CqId, NodeId, QpId, WqId};
use crate::time::Time;
use crate::verbs::Opcode;
use std::collections::VecDeque;

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqeStatus {
    /// Operation completed successfully.
    Success,
    /// A key violation or bad address at either end.
    ProtectionError,
    /// Receiver had no RECV posted (after retries).
    RnrError,
    /// The WQE bytes did not decode to a valid verb.
    BadWqe,
}

/// One completion entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cqe {
    /// Queue whose WQE completed.
    pub wq: WqId,
    /// Owning QP.
    pub qp: QpId,
    /// Monotonic index of the completed WQE within its queue.
    pub wqe_index: u64,
    /// The verb that completed (post-modification opcode — what actually
    /// executed, which for self-modifying programs may differ from what
    /// was posted; §3.5 notes offloads are auditable through completions).
    pub opcode: Opcode,
    /// Completion status.
    pub status: CqeStatus,
    /// Bytes moved (receives and reads).
    pub byte_len: u32,
    /// Immediate data, if the peer sent any.
    pub imm: Option<u32>,
    /// Simulated completion time.
    pub time: Time,
}

/// A completion queue.
#[derive(Debug)]
pub struct CompletionQueue {
    /// This queue's id.
    pub id: CqId,
    /// Node that owns (and polls) this CQ.
    pub node: NodeId,
    /// Capacity before overrun.
    pub depth: u32,
    /// Pollable entries (bounded by `depth`).
    pub entries: VecDeque<Cqe>,
    /// Monotonic count of CQEs ever generated — the WAIT target value.
    pub total: u64,
    /// Simulated time of the most recent completion ([`Time::ZERO`] if
    /// none yet) — the heartbeat a failure detector compares against
    /// `now` to decide a peer has gone silent (§5.6 failover).
    pub last_completion: Time,
    /// Work queues parked by WAIT verbs: `(wq, threshold)` pairs released
    /// when `total >= threshold`.
    pub waiters: Vec<(WqId, u64)>,
    /// Set when a CQE had to be dropped because the queue was full.
    pub overrun: bool,
    /// Optional host listener registered via the simulator (polling or
    /// event-driven thread). Stored as a slab index into the simulator's
    /// callback table.
    pub listener: Option<u64>,
}

impl CompletionQueue {
    /// Create an empty CQ.
    pub fn new(id: CqId, node: NodeId, depth: u32) -> CompletionQueue {
        CompletionQueue {
            id,
            node,
            depth,
            entries: VecDeque::new(),
            total: 0,
            last_completion: Time::ZERO,
            waiters: Vec::new(),
            overrun: false,
            listener: None,
        }
    }

    /// Append a completion. Always bumps the monotonic counter; drops the
    /// pollable entry (and flags overrun) if the queue is full. Returns the
    /// list of work queues whose WAIT threshold is now satisfied.
    pub fn push(&mut self, cqe: Cqe) -> Vec<WqId> {
        let mut woken = Vec::new();
        self.push_into(cqe, &mut woken);
        woken
    }

    /// Allocation-free [`CompletionQueue::push`]: satisfied waiters are
    /// appended to `woken` (not cleared first) — the event loop reuses one
    /// buffer across every CQE.
    pub fn push_into(&mut self, cqe: Cqe, woken: &mut Vec<WqId>) {
        self.total += 1;
        self.last_completion = cqe.time;
        if self.entries.len() as u32 >= self.depth {
            self.overrun = true;
        } else {
            self.entries.push_back(cqe);
        }
        let total = self.total;
        self.waiters.retain(|(wq, threshold)| {
            if total >= *threshold {
                woken.push(*wq);
                false
            } else {
                true
            }
        });
    }

    /// Park `wq` until `total >= threshold`. Returns true if the threshold
    /// is already satisfied (caller should not park).
    pub fn park(&mut self, wq: WqId, threshold: u64) -> bool {
        if self.total >= threshold {
            return true;
        }
        self.waiters.push((wq, threshold));
        false
    }

    /// Poll up to `max` completions, consuming them.
    pub fn poll(&mut self, max: usize) -> Vec<Cqe> {
        let n = max.min(self.entries.len());
        self.entries.drain(..n).collect()
    }

    /// Allocation-free [`CompletionQueue::poll`]: drains up to `max`
    /// entries into `out` (appending) and returns how many were reaped.
    /// Clients reuse one buffer per reap loop instead of allocating a
    /// fresh `Vec` per call.
    pub fn poll_into(&mut self, max: usize, out: &mut Vec<Cqe>) -> usize {
        let n = max.min(self.entries.len());
        out.extend(self.entries.drain(..n));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cqe(idx: u64) -> Cqe {
        Cqe {
            wq: WqId(0),
            qp: QpId(0),
            wqe_index: idx,
            opcode: Opcode::Noop,
            status: CqeStatus::Success,
            byte_len: 0,
            imm: None,
            time: Time::ZERO,
        }
    }

    #[test]
    fn push_and_poll() {
        let mut cq = CompletionQueue::new(CqId(0), NodeId(0), 4);
        cq.push(cqe(0));
        cq.push(cqe(1));
        assert_eq!(cq.total, 2);
        let polled = cq.poll(10);
        assert_eq!(polled.len(), 2);
        assert_eq!(polled[1].wqe_index, 1);
        assert!(cq.poll(1).is_empty());
        // Total is monotonic; polling does not decrement it.
        assert_eq!(cq.total, 2);
    }

    #[test]
    fn overrun_drops_entries_but_keeps_count() {
        let mut cq = CompletionQueue::new(CqId(0), NodeId(0), 2);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        assert!(cq.overrun);
        assert_eq!(cq.total, 5);
        assert_eq!(cq.entries.len(), 2);
    }

    #[test]
    fn waiters_release_at_threshold() {
        let mut cq = CompletionQueue::new(CqId(0), NodeId(0), 16);
        // Already satisfied: park returns true and does not enqueue.
        cq.push(cqe(0));
        assert!(cq.park(WqId(1), 1));
        assert!(cq.waiters.is_empty());

        assert!(!cq.park(WqId(1), 3));
        assert!(!cq.park(WqId(2), 2));
        assert!(cq.push(cqe(1)).contains(&WqId(2))); // total = 2
        let woken = cq.push(cqe(2)); // total = 3
        assert!(woken.contains(&WqId(1)));
        assert!(cq.waiters.is_empty());
    }

    #[test]
    fn multiple_waiters_same_threshold() {
        let mut cq = CompletionQueue::new(CqId(0), NodeId(0), 16);
        assert!(!cq.park(WqId(1), 1));
        assert!(!cq.park(WqId(2), 1));
        let woken = cq.push(cqe(0));
        assert_eq!(woken.len(), 2);
    }
}
