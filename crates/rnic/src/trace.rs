//! Execution tracing.
//!
//! When [`crate::config::SimConfig::trace`] is on, the simulator records
//! every doorbell, fetch, execution, memory effect and completion. Tests
//! use the trace to assert ordering invariants (e.g. "a managed WQE is
//! never fetched before its ENABLE"), and the paper's §3.5 auditability
//! argument — servers can monitor what offloaded code actually did — is
//! demonstrated on top of it.

use crate::ids::{CqId, WqId};
use crate::time::Time;
use crate::verbs::Opcode;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A doorbell rang for a queue.
    Doorbell {
        /// The queue.
        wq: WqId,
    },
    /// The NIC fetched (snapshotted) a WQE.
    Fetch {
        /// The queue.
        wq: WqId,
        /// Monotonic WQE index.
        idx: u64,
        /// Decoded opcode at fetch time.
        opcode: Opcode,
        /// Whether the fetch went through the serialized managed path.
        managed: bool,
    },
    /// A PU issued (began executing) a WQE.
    Issue {
        /// The queue.
        wq: WqId,
        /// Monotonic WQE index.
        idx: u64,
        /// Opcode that executed.
        opcode: Opcode,
    },
    /// A WAIT verb parked its queue.
    Park {
        /// The parked queue.
        wq: WqId,
        /// The CQ it waits on.
        cq: CqId,
        /// The threshold count.
        count: u64,
    },
    /// An ENABLE raised a queue's fetch limit.
    Enable {
        /// The enabled queue.
        wq: WqId,
        /// New (absolute) fetch limit.
        until: u64,
    },
    /// Bytes landed in host memory (RDMA write/atomic/scatter effect).
    MemWrite {
        /// Destination address.
        addr: u64,
        /// Length.
        len: u64,
    },
    /// A completion was generated.
    Cqe {
        /// The CQ.
        cq: CqId,
        /// Source queue.
        wq: WqId,
        /// WQE index.
        idx: u64,
    },
    /// A work queue faulted (key violation, bad WQE, ...).
    Fault {
        /// The queue.
        wq: WqId,
        /// Monotonic WQE index.
        idx: u64,
        /// Human-readable reason.
        reason: String,
    },
}

/// A time-stamped trace.
#[derive(Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<(Time, TraceEvent)>,
}

impl Trace {
    /// Create a trace; `enabled=false` makes all recording free no-ops.
    pub fn new(enabled: bool) -> Trace {
        Trace {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event at `now`.
    #[inline]
    pub fn record(&mut self, now: Time, ev: TraceEvent) {
        if self.enabled {
            self.events.push((now, ev));
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// Events matching a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a (Time, TraceEvent)> + 'a {
        self.events.iter().filter(move |(_, e)| pred(e))
    }

    /// Clear all recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.record(Time::ZERO, TraceEvent::Doorbell { wq: WqId(0) });
        assert!(t.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(true);
        t.record(Time::from_us(1), TraceEvent::Doorbell { wq: WqId(0) });
        t.record(
            Time::from_us(2),
            TraceEvent::Issue {
                wq: WqId(0),
                idx: 0,
                opcode: Opcode::Noop,
            },
        );
        assert_eq!(t.len(), 2);
        let fetches: Vec<_> = t
            .filter(|e| matches!(e, TraceEvent::Issue { .. }))
            .collect();
        assert_eq!(fetches.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.enabled());
    }
}
