//! Work queues: circular WQE buffers living in host memory.
//!
//! A [`WorkQueue`] here is only *metadata* — the WQEs themselves are bytes
//! in the owning node's [`crate::mem::HostMemory`], at
//! `base_addr + (index % depth) * WQE_SIZE`. The NIC must DMA-fetch those
//! bytes before executing them, and anything (including the program itself)
//! may overwrite them in the meantime. That separation is the load-bearing
//! design decision of this simulator; see DESIGN.md §5.1.
//!
//! Indices (`posted`, `fetched`, `executed`, `enabled_until`) are monotonic
//! 64-bit counters, never wrapped — mirroring ConnectX semantics the paper
//! leans on in §3.4: "these indices are maintained internally by the RNIC
//! and their values are monotonically increasing (instead of resetting
//! after the WQ wraps around)". WQ recycling works *because* an ENABLE can
//! raise `enabled_until` past `posted`, making the NIC wrap the ring and
//! re-fetch (possibly self-modified) slots.

use crate::ids::{CqId, NodeId, QpId, WqId};
use crate::rate::RateLimiter;
use crate::time::Time;
use crate::wqe::{Wqe, WQE_SIZE};

/// Which half of a QP a queue implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WqKind {
    /// Send queue: WQEs are fetched and executed by a PU.
    Send,
    /// Receive queue: WQEs are consumed by incoming SEND/WRITE_IMM.
    Recv,
}

/// Why a send queue is currently not making progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WqBlock {
    /// Ready to run (or nothing to do).
    None,
    /// Parked on a WAIT verb until `cq` reaches `count` completions.
    WaitCq {
        /// The CQ being waited on.
        cq: CqId,
        /// Completion count that unparks the queue.
        count: u64,
    },
    /// Waiting for the previous WQE's completion (FLAG_WAIT_PREV).
    WaitPrev,
    /// The owning process died and the OS reclaimed the ring (§5.6).
    Dead,
}

/// Raw bytes of one fetched WQE — the NIC's cache holds *bytes*, and they
/// are decoded at execution time. A WQE modified in host memory after its
/// fetch executes stale: the prefetch-incoherence hazard of §3.1.
pub type WqeBytes = [u8; WQE_SIZE as usize];

/// Work-queue metadata. See the module docs for the memory-resident part.
#[derive(Debug)]
pub struct WorkQueue {
    /// This queue's id.
    pub id: WqId,
    /// Owning queue pair.
    pub qp: QpId,
    /// Node whose memory holds the ring.
    pub node: NodeId,
    /// Send or receive half.
    pub kind: WqKind,
    /// Ring buffer base address in host memory.
    pub base_addr: u64,
    /// Ring capacity in WQE slots.
    pub depth: u32,
    /// Managed mode: prefetch disabled; WQEs only fetched below
    /// `enabled_until` (the paper's "managed" flag, §5 "NIC setup").
    pub managed: bool,
    /// Monotonic count of WQEs posted by the host.
    pub posted: u64,
    /// Monotonic NIC fetch pointer: WQEs `< fetched` have been snapshotted.
    pub fetched: u64,
    /// Monotonic execution pointer: WQEs `< executed` have been issued.
    pub executed: u64,
    /// Fetch limit for managed queues (raised by ENABLE verbs). Ignored
    /// when unmanaged.
    pub enabled_until: u64,
    /// Snapshots of fetched-but-not-yet-executed WQEs, with their indices.
    /// This models the NIC's WQE cache: execution uses these bytes, not
    /// host memory ("the execution outcome reflects the WRs at the time
    /// they were fetched", §3.1).
    pub fetch_cache: Vec<(u64, WqeBytes)>,
    /// Whether a fetch DMA is currently in flight.
    pub fetch_inflight: bool,
    /// The WQE currently being issued: `(index, decoded wqe, issue start)`.
    pub executing: Option<(u64, Wqe, Time)>,
    /// Port this queue's QP is bound to.
    pub port: usize,
    /// Processing unit (port-local index) executing this queue.
    pub pu: usize,
    /// Current blocking state.
    pub block: WqBlock,
    /// Completion bookkeeping: monotonic count of this queue's WQEs that
    /// have fully completed (for FLAG_WAIT_PREV gating).
    pub completed: u64,
    /// Earliest time the next WQE may issue (chain-gap pacing and rate
    /// limiting).
    pub next_issue_at: Time,
    /// Optional rate limit in operations per second
    /// (`ibv_modify_qp_rate_limit`, used by §3.5 "Isolation").
    pub rate_ops_per_sec: Option<f64>,
    /// Token bucket enforcing `rate_ops_per_sec`, consulted at issue. Lives
    /// on the queue (not in a simulator-side map) so the per-event path
    /// never hashes a queue id to find it.
    pub rate_limiter: Option<RateLimiter>,
    /// Statistics: WQEs executed (including recycled re-executions).
    pub stat_executed: u64,
    /// Statistics: doorbells observed.
    pub stat_doorbells: u64,
    /// Cyclic receive ring (receive queues only): once fully posted, the
    /// NIC re-arms consumed RECVs as the ring wraps — no further host
    /// posts needed. This is how a recycled offload's trigger RECVs
    /// persist without CPU (the RQ analogue of §3.4's WQ recycling; real
    /// NICs offer it as cyclic/striding receive buffers).
    pub cyclic: bool,
}

impl WorkQueue {
    /// Create queue metadata for a ring at `base_addr` with `depth` slots.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WqId,
        qp: QpId,
        node: NodeId,
        kind: WqKind,
        base_addr: u64,
        depth: u32,
        managed: bool,
        port: usize,
        pu: usize,
    ) -> WorkQueue {
        WorkQueue {
            id,
            qp,
            node,
            kind,
            base_addr,
            depth,
            managed,
            posted: 0,
            fetched: 0,
            executed: 0,
            enabled_until: 0,
            fetch_cache: Vec::new(),
            fetch_inflight: false,
            executing: None,
            port,
            pu,
            block: WqBlock::None,
            completed: 0,
            next_issue_at: Time::ZERO,
            rate_ops_per_sec: None,
            rate_limiter: None,
            stat_executed: 0,
            stat_doorbells: 0,
            cyclic: false,
        }
    }

    /// Address of the slot that WQE index `idx` occupies (the ring wraps).
    pub fn slot_addr(&self, idx: u64) -> u64 {
        self.base_addr + (idx % self.depth as u64) * WQE_SIZE
    }

    /// Total ring size in bytes.
    pub fn ring_bytes(&self) -> u64 {
        self.depth as u64 * WQE_SIZE
    }

    /// Whether the host can post another WQE without overwriting one the
    /// NIC has not executed yet. (A cyclic RQ's `executed` outruns
    /// `posted`, hence the saturating difference — such rings are full by
    /// construction and never posted to again.)
    pub fn has_room(&self) -> bool {
        self.posted.saturating_sub(self.executed) < self.depth as u64 && !self.cyclic
    }

    /// Highest WQE index (exclusive) the NIC may currently fetch.
    ///
    /// Unmanaged queues fetch up to what the host posted. Managed queues
    /// fetch up to their enable limit — which may *exceed* `posted`: that
    /// is WQ recycling (§3.4), the ring wraps and the NIC re-reads old
    /// slots.
    pub fn fetch_limit(&self) -> u64 {
        if self.managed {
            self.enabled_until
        } else {
            self.posted
        }
    }

    /// Whether a fetch of WQE `fetched` may start now.
    pub fn can_fetch(&self) -> bool {
        self.fetched < self.fetch_limit()
    }

    /// Take the cached snapshot for execution index `idx`, if present.
    pub fn take_snapshot(&mut self, idx: u64) -> Option<WqeBytes> {
        let pos = self.fetch_cache.iter().position(|(i, _)| *i == idx)?;
        Some(self.fetch_cache.remove(pos).1)
    }

    /// Whether a snapshot for `idx` is cached (without consuming it).
    pub fn has_snapshot(&self, idx: u64) -> bool {
        self.fetch_cache.iter().any(|(i, _)| *i == idx)
    }

    /// Record a fetched snapshot.
    pub fn cache_snapshot(&mut self, idx: u64, bytes: WqeBytes) {
        debug_assert!(!self.has_snapshot(idx));
        self.fetch_cache.push((idx, bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wq(depth: u32, managed: bool) -> WorkQueue {
        WorkQueue::new(
            WqId(0),
            QpId(0),
            NodeId(0),
            WqKind::Send,
            0x1000,
            depth,
            managed,
            0,
            0,
        )
    }

    #[test]
    fn slot_addresses_wrap() {
        let q = wq(4, false);
        assert_eq!(q.slot_addr(0), 0x1000);
        assert_eq!(q.slot_addr(3), 0x1000 + 3 * WQE_SIZE);
        assert_eq!(q.slot_addr(4), 0x1000); // wrapped
        assert_eq!(q.slot_addr(7), 0x1000 + 3 * WQE_SIZE);
        assert_eq!(q.ring_bytes(), 4 * WQE_SIZE);
    }

    #[test]
    fn unmanaged_fetch_limit_is_posted() {
        let mut q = wq(8, false);
        assert!(!q.can_fetch());
        q.posted = 3;
        assert_eq!(q.fetch_limit(), 3);
        assert!(q.can_fetch());
        q.fetched = 3;
        assert!(!q.can_fetch());
    }

    #[test]
    fn managed_fetch_limit_is_enable_and_may_pass_posted() {
        let mut q = wq(8, true);
        q.posted = 3;
        // Nothing enabled: nothing fetchable even though WQEs are posted.
        assert!(!q.can_fetch());
        q.enabled_until = 2;
        assert_eq!(q.fetch_limit(), 2);
        // Recycling: enable far beyond posted is legal.
        q.enabled_until = 100;
        q.fetched = 50;
        assert!(q.can_fetch());
    }

    #[test]
    fn room_accounting() {
        let mut q = wq(2, false);
        assert!(q.has_room());
        q.posted = 2;
        assert!(!q.has_room());
        q.executed = 1;
        assert!(q.has_room());
    }

    #[test]
    fn snapshot_cache_round_trip() {
        let mut q = wq(4, true);
        let w = Wqe {
            id: 7,
            ..Wqe::default()
        };
        q.cache_snapshot(5, w.encode());
        assert!(q.has_snapshot(5));
        assert!(!q.has_snapshot(4));
        assert_eq!(q.take_snapshot(4), None);
        let bytes = q.take_snapshot(5).unwrap();
        assert_eq!(Wqe::decode(&bytes).unwrap().id, 7);
        assert_eq!(q.take_snapshot(5), None);
    }
}
