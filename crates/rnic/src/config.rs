//! Simulation configuration and the calibrated timing model.
//!
//! Every latency/throughput constant in [`NicConfig`] is calibrated against a
//! measurement published in the RedN paper (NSDI '22). The calibration
//! sources are:
//!
//! * **Fig 7** — per-verb latencies at 64 B IO: `WRITE` 1.6 µs,
//!   `READ`/`CAS`/`ADD`/`MAX` ≈ 1.8 µs; remote-vs-local NOOP delta
//!   ≈ 0.25 µs (network round trip for back-to-back links).
//! * **Fig 8** — ordering-mode marginals: first NOOP 1.21 µs, then
//!   +0.17 µs/WR under *WQ order*, +0.19 µs/WR under *completion order*,
//!   +0.54 µs/WR under *doorbell order*.
//! * **Table 1** — verb processing bandwidth by generation: ConnectX-3
//!   15 M verbs/s (2 PUs), ConnectX-5 63 M (8 PUs), ConnectX-6 112 M
//!   (16 PUs).
//! * **Table 3** — single-port CX5 throughput: READ 65 M, WRITE 63 M,
//!   MAX 63 M, CAS/ADD 8.4 M ops/s.
//! * **Table 4** — hash-lookup ceilings: NIC PU bound ≈ 500 K/s per port at
//!   small IO; single-port InfiniBand bandwidth ≈ 92 Gbps usable; dual-port
//!   bound by PCIe 3.0 ×16.
//!
//! The decomposition (doorbell, fetch, issue, data-path extras) is our own —
//! the paper does not publish one — but it is constructed so the published
//! aggregates emerge from the model. See `DESIGN.md` §1/§5.

use crate::time::Time;

/// Mellanox ConnectX generation presets (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Generation {
    /// ConnectX-3 (2014): 2 processing units per port, 15 M verbs/s.
    ConnectX3,
    /// ConnectX-5 (2016): 8 processing units per port, 63 M verbs/s.
    /// The paper's testbed NIC; the default everywhere in this repo.
    ConnectX5,
    /// ConnectX-6 (2017): 16 processing units per port, 112 M verbs/s.
    ConnectX6,
}

impl Generation {
    /// Number of processing units per port (Table 1).
    pub fn pus_per_port(self) -> usize {
        match self {
            Generation::ConnectX3 => 2,
            Generation::ConnectX5 => 8,
            Generation::ConnectX6 => 16,
        }
    }

    /// Per-PU issue time for *write-class* verbs, chosen so that
    /// `pus_per_port / t_issue_write` reproduces Table 1:
    /// 2/0.1333 µs = 15 M, 8/0.127 µs = 63 M, 16/0.1429 µs = 112 M.
    pub fn t_issue_write(self) -> Time {
        match self {
            Generation::ConnectX3 => Time::from_ps(133_333),
            Generation::ConnectX5 => Time::from_ps(126_984),
            Generation::ConnectX6 => Time::from_ps(142_857),
        }
    }

    /// Per-PU issue time for *read-class* verbs. Table 3 reports READ at
    /// 65 M ops/s on a CX5 port: 8 PUs / 0.12308 µs = 65 M.
    pub fn t_issue_read(self) -> Time {
        match self {
            Generation::ConnectX3 => Time::from_ps(130_000),
            Generation::ConnectX5 => Time::from_ps(123_077),
            Generation::ConnectX6 => Time::from_ps(140_000),
        }
    }

    /// Year the generation shipped (for pretty-printing Table 1).
    pub fn year(self) -> u32 {
        match self {
            Generation::ConnectX3 => 2014,
            Generation::ConnectX5 => 2016,
            Generation::ConnectX6 => 2017,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Generation::ConnectX3 => "ConnectX-3",
            Generation::ConnectX5 => "ConnectX-5",
            Generation::ConnectX6 => "ConnectX-6",
        }
    }
}

/// Configuration of one simulated RNIC.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Hardware generation preset.
    pub generation: Generation,
    /// Number of ports (the paper's CX5 testbed has dual-port NICs but
    /// most experiments use a single port; Table 4 sweeps both).
    pub ports: usize,
    /// Processing units per port. Each WQ is pinned to one PU; queues on
    /// different PUs execute in parallel (§3.5 "Parallelism").
    pub pus_per_port: usize,
    /// MMIO doorbell ring + NIC arm cost. Calibrated so a single NOOP
    /// completes in 1.21 µs (Fig 8): 0.67 + 0.35 (fetch) + 0.17 (issue)
    /// + 0.02 (CQE) = 1.21 µs.
    pub t_doorbell: Time,
    /// DMA latency of one *prefetch batch* WQE fetch on an unmanaged queue.
    pub t_fetch_batch: Time,
    /// WQEs fetched per prefetch DMA on unmanaged queues. Mellanox's
    /// prefetch depth is proprietary (§5.1.2 footnote); 16 keeps the fetch
    /// pipeline off the critical path as the paper's Fig 8 implies.
    pub prefetch_batch: usize,
    /// End-to-end latency of one *managed* (doorbell-ordered) WQE fetch —
    /// a serialized 64 B DMA round trip. A managed queue cannot overlap
    /// fetch with its own execution, so its per-WR marginal is
    /// `t_issue + t_managed_fetch` = 0.123 + 0.417 = the paper's 0.54 µs
    /// doorbell-order marginal (Fig 8). The engine behind it is shared per
    /// port and is the "NIC PU" bottleneck of Table 4.
    pub t_managed_fetch: Time,
    /// Outstanding managed fetches the per-port fetch engine pipelines.
    /// PCIe non-posted reads overlap (tag-level parallelism), so fetches
    /// of *independent* managed queues need not serialize at full DMA
    /// latency: each fetch occupies the engine for
    /// `t_managed_fetch / managed_fetch_pipeline` and completes after the
    /// full `t_managed_fetch` latency. A single queue still experiences
    /// the full per-WR latency (its own fetch/execute dependency — the
    /// Fig 8 doorbell-order marginal and the Table 4 single-offload
    /// ceilings are unchanged); only cross-queue contention is relieved.
    pub managed_fetch_pipeline: usize,
    /// Minimum start-to-start gap between consecutive WQEs of the *same*
    /// WQ (serial chain bookkeeping). This is the 0.17 µs WQ-order marginal
    /// of Fig 8; it exceeds the raw PU issue time because a single chain
    /// cannot overlap WQE boundaries the way independent queues can.
    pub t_chain_gap: Time,
    /// CQE generation/delivery cost. Completion ordering adds one of these
    /// per WR: 0.17 + 0.02 = the 0.19 µs marginal of Fig 8.
    pub t_cqe: Time,
    /// PU occupancy per write-class verb (WRITE/SEND/NOOP). See
    /// [`Generation::t_issue_write`].
    pub t_issue_write: Time,
    /// PU occupancy per read-class verb (READ/atomics/calc). See
    /// [`Generation::t_issue_read`].
    pub t_issue_read: Time,
    /// PU occupancy for WAIT/ENABLE control verbs.
    pub t_issue_ctrl: Time,
    /// Serialized atomic-engine occupancy per atomic verb. Table 3: CAS and
    /// ADD sustain 8.4 M ops/s per port → 0.119 µs each. PCIe atomics
    /// require memory synchronization across the bus (§5.1.3).
    pub t_atomic_engine: Time,
    /// Extra latency of the posted (one-way) data path: WRITE/SEND beyond a
    /// NOOP, net of the network round trip. Fig 7: 1.6 µs (WRITE) − 1.21 µs
    /// (NOOP) − 0.25 µs (back-to-back RTT) = 0.14 µs at 64 B.
    pub t_posted_extra: Time,
    /// Extra latency of the non-posted data path: READ/CAS/ADD/MAX wait for
    /// a PCIe completion at the responder. Fig 7: 1.8 − 1.21 − 0.25 =
    /// 0.34 µs at 64 B.
    pub t_nonposted_extra: Time,
    /// Usable InfiniBand bandwidth per port, Gbps. The paper reports
    /// "~92 Gbps" on 100 Gbps links (Table 4).
    pub ib_gbps: f64,
    /// Store-and-forward stage bandwidth of one PCIe transfer (latency
    /// model). PCIe 3.0 ×16 raw ≈ 126 Gbps. Calibrated against Fig 10's
    /// "Ideal" 64 KB READ ≈ 15–16 µs.
    pub pcie_lat_gbps: f64,
    /// Sustained PCIe bus throughput (resource model). Lower than the raw
    /// stage rate because of TLP overheads and bidirectional contention;
    /// calibrated against Table 4's dual-port 64 KB ceiling of 190 K ops/s
    /// (64 KiB / 100 Gbps ≈ 5.24 µs per op shared bus).
    pub pcie_bw_gbps: f64,
    /// Maximum scatter entries a RECV may carry. The paper relies on the
    /// ConnectX limit of 16 (§5.3).
    pub max_recv_sge: usize,
    /// Whether the NIC supports cross-channel WAIT/ENABLE (ConnectX-3 and
    /// later; Intel RNICs do not — §6 "Intel RNICs").
    pub supports_wait_enable: bool,
    /// Whether vendor calc verbs (MAX/MIN) are available (§3.5: "their
    /// availability is vendor-specific and currently only supported by
    /// ConnectX NICs").
    pub supports_calc: bool,
    /// Send/recv queue depth limit (WQE slots per queue).
    pub max_wq_depth: usize,
    /// Completion queue depth limit.
    pub max_cq_depth: usize,
}

impl NicConfig {
    /// Preset for the given generation with the paper's calibration.
    pub fn with_generation(generation: Generation) -> NicConfig {
        // ConnectX-6 ships on PCIe gen4 hosts; the older cards are gen3
        // (the gen3 x16 bus is what caps Table 4's dual-port row).
        let (pcie_lat, pcie_bw) = match generation {
            Generation::ConnectX6 => (252.0, 200.0),
            _ => (126.0, 100.0),
        };
        NicConfig {
            generation,
            ports: 1,
            pus_per_port: generation.pus_per_port(),
            t_doorbell: Time::from_ps(670_000),
            t_fetch_batch: Time::from_ps(350_000),
            prefetch_batch: 16,
            t_managed_fetch: Time::from_ps(417_000),
            managed_fetch_pipeline: 4,
            t_chain_gap: Time::from_ps(170_000),
            t_cqe: Time::from_ps(20_000),
            t_issue_write: generation.t_issue_write(),
            t_issue_read: generation.t_issue_read(),
            t_issue_ctrl: Time::from_ps(60_000),
            t_atomic_engine: Time::from_ps(119_048),
            t_posted_extra: Time::from_ps(140_000),
            t_nonposted_extra: Time::from_ps(340_000),
            ib_gbps: 92.0,
            pcie_lat_gbps: pcie_lat,
            pcie_bw_gbps: pcie_bw,
            max_recv_sge: 16,
            supports_wait_enable: true,
            supports_calc: true,
            max_wq_depth: 4096,
            max_cq_depth: 16384,
        }
    }

    /// The paper's testbed NIC: 100 Gbps dual-port ConnectX-5 (single port
    /// enabled; call [`NicConfig::dual_port`] for Table 4's dual
    /// configuration).
    pub fn connectx5() -> NicConfig {
        NicConfig::with_generation(Generation::ConnectX5)
    }

    /// ConnectX-3 preset (2 PUs/port — Table 1).
    pub fn connectx3() -> NicConfig {
        NicConfig::with_generation(Generation::ConnectX3)
    }

    /// ConnectX-6 preset (16 PUs/port — Table 1).
    pub fn connectx6() -> NicConfig {
        NicConfig::with_generation(Generation::ConnectX6)
    }

    /// Enable the second port (doubles PUs and fetch engines, shares the
    /// PCIe bus — Table 4).
    pub fn dual_port(mut self) -> NicConfig {
        self.ports = 2;
        self
    }

    /// Fetch-engine occupancy of one managed WQE fetch: the serialized
    /// slot a fetch holds while its DMA is in flight. The remaining
    /// `t_managed_fetch - slot` of latency overlaps with other queues'
    /// fetches (see [`NicConfig::managed_fetch_pipeline`]).
    pub fn t_managed_fetch_slot(&self) -> Time {
        Time::from_ps(self.t_managed_fetch.as_ps() / self.managed_fetch_pipeline.max(1) as u64)
    }

    /// Issue time (PU occupancy) for one verb of the given class.
    pub fn t_issue(&self, read_class: bool) -> Time {
        if read_class {
            self.t_issue_read
        } else {
            self.t_issue_write
        }
    }

    /// Total PUs across all enabled ports.
    pub fn total_pus(&self) -> usize {
        self.pus_per_port * self.ports
    }
}

impl Default for NicConfig {
    fn default() -> NicConfig {
        NicConfig::connectx5()
    }
}

/// Configuration of one simulated host (CPU side).
///
/// These constants drive the two-sided baselines and the contention /
/// failure experiments (§5.4–§5.6). They model a dual-socket Haswell server
/// (the paper's testbed: 16 cores at 3.2 GHz, 128 GB DRAM, Ubuntu 18.04).
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Number of CPU cores.
    pub cores: usize,
    /// DRAM capacity in bytes (bump-allocated by the simulator).
    pub dram_bytes: u64,
    /// Cost for a polling thread to notice and pick up a new CQE.
    pub t_poll_pickup: Time,
    /// Interrupt + scheduler wake latency for an event-driven (blocking)
    /// thread. Dominates the event-based curve in Fig 10 (3.8× worse than
    /// RedN).
    pub t_event_wake: Time,
    /// Context-switch cost once a core is multiplexed between threads.
    pub t_context_switch: Time,
    /// OS scheduling quantum: when runnable threads exceed cores, a thread
    /// may wait up to this long for a slice. Drives the tail blow-up in
    /// Fig 15.
    pub t_sched_quantum: Time,
    /// CPU time to execute a hash lookup in the two-sided RPC handler
    /// (hash, bucket walk, cache misses, response marshaling). Calibrated
    /// so the polling two-sided path sits above RedN at small IO (Fig 10).
    pub t_rpc_lookup: Time,
    /// CPU time to execute a `set` (allocation + insert) in the RPC
    /// handler.
    pub t_rpc_set: Time,
    /// Per-byte memcpy cost on the host (VMA socket stack pays this twice;
    /// §5.4: "VMA has to memcpy data from send and receive buffers").
    pub t_memcpy_per_byte: Time,
    /// Fixed per-packet cost of the VMA user-space network stack (both
    /// directions of UDP processing; §5.4: "VMA incurs extra overhead
    /// since it relies on a network stack to process packets"). Calibrated
    /// against Fig 14's ~2.6× gap at small values.
    pub t_vma_stack: Time,
    /// Client-side software cost between *dependent* verbs in a chained
    /// operation: detect the completion, parse the result, compose and
    /// post the next request. One-sided multi-RTT lookups pay this per
    /// hop — a key reason they trail RedN even though the wire time is
    /// similar (§5.2).
    pub t_client_op: Time,
    /// Time for the OS to detect a crashed process and restart it
    /// (Fig 16: "at least 1 second to bootstrap").
    pub t_restart: Time,
    /// Time for a restarted Memcached to rebuild metadata and hash tables
    /// (Fig 16: "1.25 additional seconds").
    pub t_rebuild: Time,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            cores: 16,
            dram_bytes: 1 << 30,
            t_poll_pickup: Time::from_ps(150_000),
            t_event_wake: Time::from_us_f64(14.0),
            t_context_switch: Time::from_us_f64(1.8),
            t_sched_quantum: Time::from_us_f64(200.0),
            t_rpc_lookup: Time::from_us_f64(2.2),
            t_rpc_set: Time::from_us_f64(3.0),
            t_memcpy_per_byte: Time::from_ps(25),
            t_vma_stack: Time::from_us_f64(6.5),
            t_client_op: Time::from_us_f64(2.0),
            t_restart: Time::from_ms(1000),
            t_rebuild: Time::from_ms(1250),
        }
    }
}

/// Configuration of one point-to-point link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// One-way propagation + switching latency. The paper measures a
    /// 0.25 µs round trip between back-to-back nodes (Fig 7).
    pub one_way: Time,
}

impl LinkConfig {
    /// Back-to-back InfiniBand cable, as in the paper's testbed.
    pub fn back_to_back() -> LinkConfig {
        LinkConfig {
            one_way: Time::from_ps(125_000),
        }
    }

    /// A link with one switch hop (~0.3 µs extra round trip).
    pub fn one_switch() -> LinkConfig {
        LinkConfig {
            one_way: Time::from_ps(275_000),
        }
    }
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig::back_to_back()
    }
}

/// Global simulation options.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Record a full execution trace (every fetch, execution, completion).
    /// Useful for tests and debugging; costs memory on long runs.
    pub trace: bool,
    /// Hard cap on simulated events, to turn runaway self-modifying
    /// programs (which are, after all, Turing complete) into clean errors
    /// rather than hangs.
    pub max_events: u64,
    /// Number of event-wheel lanes the queue is sharded into (clamped to
    /// at least 1). Lanes absorb scheduling work per NIC port; the pop
    /// side merges lane heads in `(time, seq)` order, so the observable
    /// event order — and every trace and artifact — is identical for any
    /// lane count. Defaults from the `REDN_SIM_THREADS` environment
    /// variable (also the worker-thread count of sharded bench sweeps).
    pub lanes: usize,
}

impl SimConfig {
    /// Lane/worker count from `REDN_SIM_THREADS`, clamped to `1..=64`;
    /// 1 when unset or unparsable.
    pub fn threads_from_env() -> usize {
        std::env::var("REDN_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 64))
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            trace: false,
            max_events: 500_000_000,
            lanes: SimConfig::threads_from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rates_emerge_from_presets() {
        // Table 1: 2 PUs → 15 M, 8 → 63 M, 16 → 112 M write verbs/s.
        for (generation, expect_mops) in [
            (Generation::ConnectX3, 15.0),
            (Generation::ConnectX5, 63.0),
            (Generation::ConnectX6, 112.0),
        ] {
            let cfg = NicConfig::with_generation(generation);
            let rate = cfg.pus_per_port as f64 / cfg.t_issue_write.as_us_f64();
            assert!(
                (rate / 1e6 * 1e6 - expect_mops).abs() / expect_mops < 0.01,
                "{generation:?}: {rate} vs {expect_mops}M"
            );
        }
    }

    #[test]
    fn fig8_marginals_are_consistent() {
        let cfg = NicConfig::connectx5();
        // First NOOP: doorbell + fetch + issue + cqe = 1.21 us.
        let first = cfg.t_doorbell + cfg.t_fetch_batch + cfg.t_chain_gap + cfg.t_cqe;
        assert!((first.as_us_f64() - 1.21).abs() < 0.005, "{first:?}");
        // Completion-order marginal: 0.17 + 0.02 = 0.19 us.
        let comp = cfg.t_chain_gap + cfg.t_cqe;
        assert!((comp.as_us_f64() - 0.19).abs() < 0.005);
        // Doorbell-order marginal: issue + serialized fetch =
        // 0.123 + 0.417 = 0.54 us.
        let db = cfg.t_managed_fetch + cfg.t_issue_read;
        assert!((db.as_us_f64() - 0.54).abs() < 0.005);
    }

    #[test]
    fn table3_read_write_rates() {
        let cfg = NicConfig::connectx5();
        // ops per microsecond == M ops/s.
        let read = cfg.pus_per_port as f64 / cfg.t_issue_read.as_us_f64();
        let write = cfg.pus_per_port as f64 / cfg.t_issue_write.as_us_f64();
        let cas = 1.0 / cfg.t_atomic_engine.as_us_f64();
        assert!((read - 65.0).abs() < 0.7, "read {read}M");
        assert!((write - 63.0).abs() < 0.7, "write {write}M");
        assert!((cas - 8.4).abs() < 0.1, "cas {cas}M");
    }

    #[test]
    fn dual_port_doubles_pus() {
        let cfg = NicConfig::connectx5().dual_port();
        assert_eq!(cfg.total_pus(), 16);
        assert_eq!(NicConfig::connectx5().total_pus(), 8);
    }

    #[test]
    fn fig7_verb_latencies() {
        // NOOP executes locally even on a remote-connected QP: 1.21 us.
        // WRITE adds the posted data path + network RTT: 1.6 us.
        // READ/CAS/ADD add the non-posted data path + RTT: 1.8 us.
        let cfg = NicConfig::connectx5();
        let link = LinkConfig::back_to_back();
        let noop = cfg.t_doorbell + cfg.t_fetch_batch + cfg.t_chain_gap + cfg.t_cqe;
        let rtt = link.one_way * 2;
        let write = noop + cfg.t_posted_extra + rtt;
        let read = noop + cfg.t_nonposted_extra + rtt;
        assert!((noop.as_us_f64() - 1.21).abs() < 0.005, "{noop:?}");
        assert!((write.as_us_f64() - 1.6).abs() < 0.005, "{write:?}");
        assert!((read.as_us_f64() - 1.8).abs() < 0.005, "{read:?}");
    }
}
