//! Per-queue rate limiting.
//!
//! ConnectX NICs expose `ibv_modify_qp_rate_limit`, which the paper's §3.5
//! ("Isolation") proposes as the defense against tenants triggering
//! non-terminating offloads: "even if clients trigger non-terminating
//! offload code, they still have to adhere to their assigned rates."
//!
//! The limiter is a token bucket expressed in operations per second with a
//! configurable burst. The simulator consults it before issuing each WQE.

use crate::time::Time;

/// A deterministic token-bucket rate limiter.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    /// Picoseconds credited per operation (1/rate).
    interval: Time,
    /// Maximum burst, in operations.
    burst: u64,
    /// Time at which the bucket was last observed.
    last: Time,
    /// Tokens available at `last` (scaled by `interval` — stored in ps of
    /// accumulated credit to stay integral).
    credit: Time,
}

impl RateLimiter {
    /// Limit to `ops_per_sec` with the given burst allowance.
    pub fn new(ops_per_sec: f64, burst: u64) -> RateLimiter {
        assert!(ops_per_sec > 0.0, "rate must be positive");
        let interval = Time::from_ps((1e12 / ops_per_sec).round() as u64);
        RateLimiter {
            interval,
            burst: burst.max(1),
            last: Time::ZERO,
            credit: Time::from_ps(interval.as_ps() * burst.max(1)),
        }
    }

    /// Earliest time at or after `now` when one operation may proceed.
    /// Calling this *consumes* a token at the returned time.
    pub fn admit(&mut self, now: Time) -> Time {
        // Accrue credit since `last`, capped at the burst ceiling.
        let cap = Time::from_ps(self.interval.as_ps() * self.burst);
        let accrued = self.credit + now.saturating_sub(self.last);
        self.credit = accrued.min(cap);
        self.last = now;
        if self.credit >= self.interval {
            self.credit -= self.interval;
            now
        } else {
            let wait = self.interval - self.credit;
            self.credit = Time::ZERO;
            self.last = now + wait;
            now + wait
        }
    }

    /// The configured per-operation interval.
    pub fn interval(&self) -> Time {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_paced() {
        // 1M ops/s = 1 us interval, burst of 2.
        let mut rl = RateLimiter::new(1e6, 2);
        let t0 = Time::from_us(10);
        // Two ops admitted immediately (burst).
        assert_eq!(rl.admit(t0), t0);
        assert_eq!(rl.admit(t0), t0);
        // Third op waits a full interval.
        let t1 = rl.admit(t0);
        assert_eq!(t1, t0 + Time::from_us(1));
        // Fourth waits a further interval.
        let t2 = rl.admit(t1);
        assert_eq!(t2, t1 + Time::from_us(1));
    }

    #[test]
    fn credit_accrues_while_idle_but_caps_at_burst() {
        let mut rl = RateLimiter::new(1e6, 2);
        let t0 = Time::from_us(0);
        assert_eq!(rl.admit(t0), t0);
        assert_eq!(rl.admit(t0), t0);
        // Idle for 10 us: credit caps at 2 ops, not 10.
        let t1 = Time::from_us(10);
        assert_eq!(rl.admit(t1), t1);
        assert_eq!(rl.admit(t1), t1);
        assert_eq!(rl.admit(t1), t1 + Time::from_us(1));
    }

    #[test]
    fn steady_state_rate_is_respected() {
        let mut rl = RateLimiter::new(2e6, 1); // 0.5 us interval
        let mut t = Time::ZERO;
        for _ in 0..100 {
            t = rl.admit(t);
        }
        // 100 ops at 2M ops/s need >= 49.5 us (first is free from burst).
        assert!(t >= Time::from_ps(49_500_000), "{t:?}");
        assert!(t <= Time::from_us(51), "{t:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = RateLimiter::new(0.0, 1);
    }
}
