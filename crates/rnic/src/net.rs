//! The network fabric: in-flight messages between connected queue pairs.
//!
//! Transport is RC (reliable connection) — the only RDMA transport that
//! supports the WAIT/ENABLE synchronization verbs the paper uses ("we use
//! reliable connection (RC) RDMA transport, which supports the RDMA
//! synchronization features we use", §5 "NIC setup").
//!
//! Loopback QPs (peer on the same node) skip the wire entirely but still
//! cross PCIe; that matches the paper's local-vs-remote NOOP measurement
//! (Fig 7) and is the common case for RedN chains, which mostly operate on
//! the server's own memory.

use crate::cq::CqeStatus;
use crate::ids::{QpId, WqId};
use crate::verbs::Opcode;

/// Payload of a request traveling initiator → responder.
#[derive(Clone, Debug)]
pub enum Payload {
    /// Two-sided send: consumes a RECV, scatters `bytes`.
    Send {
        /// Message bytes (gathered at the initiator at issue time).
        bytes: Vec<u8>,
    },
    /// One-sided write.
    Write {
        /// Responder-side destination.
        raddr: u64,
        /// Remote key presented.
        rkey: u32,
        /// Data.
        bytes: Vec<u8>,
        /// Immediate data (WRITE_IMM) — also consumes a RECV.
        imm: Option<u32>,
    },
    /// One-sided read request.
    Read {
        /// Responder-side source.
        raddr: u64,
        /// Remote key presented.
        rkey: u32,
        /// Bytes requested.
        len: u32,
    },
    /// 8-byte atomic (CAS/FADD/MAX/MIN).
    Atomic {
        /// Which atomic verb.
        op: Opcode,
        /// Responder-side target (8-byte aligned).
        raddr: u64,
        /// Remote key presented.
        rkey: u32,
        /// CAS compare / ADD addend / MAX-MIN operand.
        operand: u64,
        /// CAS swap value.
        swap: u64,
    },
}

impl Payload {
    /// Bytes this payload moves initiator → responder (wire occupancy of
    /// the request direction).
    pub fn request_bytes(&self) -> u64 {
        match self {
            Payload::Send { bytes } => bytes.len() as u64,
            Payload::Write { bytes, .. } => bytes.len() as u64,
            Payload::Read { .. } => 16, // just the request header
            Payload::Atomic { .. } => 24,
        }
    }

    /// Bytes the response moves responder → initiator.
    pub fn response_bytes(&self) -> u64 {
        match self {
            Payload::Read { len, .. } => *len as u64,
            Payload::Atomic { .. } => 8,
            _ => 0, // bare ack
        }
    }
}

/// One in-flight operation: created at issue, consulted at arrival
/// (responder effects) and completion (initiator bookkeeping).
#[derive(Clone, Debug)]
pub struct InFlight {
    /// Initiating work queue.
    pub src_wq: WqId,
    /// Monotonic WQE index at the initiator.
    pub src_idx: u64,
    /// Initiating QP.
    pub src_qp: QpId,
    /// Responder QP (peer of `src_qp`; equal node for loopback).
    pub dst_qp: QpId,
    /// The verb that executed (post-modification).
    pub opcode: Opcode,
    /// Whether the initiator requested a CQE.
    pub signaled: bool,
    /// Request payload.
    pub payload: Payload,
    /// Filled at the responder: outcome of the operation.
    pub status: CqeStatus,
    /// Filled at the responder for READ (data) / atomics (old value).
    pub result: Vec<u8>,
    /// Initiator-side result sink for READ / atomic writeback
    /// (`(addr, lkey)`; addr 0 = discard, as RedN chains usually do).
    pub result_sink: (u64, u32),
    /// When set, `result_sink.0` is an SGE table address and
    /// `result_sink.1` its entry count: the READ response scatters across
    /// the table (RedN's Fig 9 uses this to land one bucket READ in two
    /// different WQE fields).
    pub result_sgl: bool,
    /// Bytes moved, reported in the CQE.
    pub byte_len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_byte_accounting() {
        let send = Payload::Send {
            bytes: vec![0; 100],
        };
        assert_eq!(send.request_bytes(), 100);
        assert_eq!(send.response_bytes(), 0);

        let read = Payload::Read {
            raddr: 0,
            rkey: 0,
            len: 4096,
        };
        assert_eq!(read.request_bytes(), 16);
        assert_eq!(read.response_bytes(), 4096);

        let atomic = Payload::Atomic {
            op: Opcode::Cas,
            raddr: 0,
            rkey: 0,
            operand: 1,
            swap: 2,
        };
        assert_eq!(atomic.request_bytes(), 24);
        assert_eq!(atomic.response_bytes(), 8);

        let write = Payload::Write {
            raddr: 0,
            rkey: 0,
            bytes: vec![0; 64],
            imm: Some(7),
        };
        assert_eq!(write.request_bytes(), 64);
        assert_eq!(write.response_bytes(), 0);
    }
}
