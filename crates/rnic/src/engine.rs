//! The discrete-event core: a deterministic event queue and FIFO resource
//! models.
//!
//! Determinism is a hard requirement — benchmarks must be reproducible run
//! to run — so events are ordered by `(time, sequence_number)` with the
//! sequence number assigned at scheduling time. No wall-clock, no hashing
//! order, no thread interleaving.
//!
//! The queue is a **hierarchical timing wheel**, not a binary heap: events
//! within the near horizon land in unsorted per-tick buckets (sorted only
//! when their bucket drains — O(1) schedule, cache-friendly drain) and
//! far-future events sit in a sorted overflow level that cascades into the
//! wheel as the cursor approaches. The wheel is additionally **sharded
//! into lanes** (one per NIC port in multi-lane configurations): each lane
//! is an independent wheel, and `pop` merges lane heads in global
//! `(time, seq)` order, so the observable event order — and with it every
//! trace and artifact — is byte-identical no matter how many lanes the
//! queue is split into. See DESIGN.md "Event engine".

use crate::cq::Cqe;
use crate::ids::{CqId, NodeId, QpId, WqId};
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Core simulator events. Host-side application logic is expressed through
/// `Callback` events whose closures live in the simulator's callback slab.
#[derive(Debug)]
pub enum EventKind {
    /// Try to make progress on a send queue (fetch/issue the next WQE).
    WqAdvance {
        /// Queue to advance.
        wq: WqId,
    },
    /// A WQE fetch DMA finished; the snapshot is taken when this fires.
    FetchDone {
        /// Queue that fetched.
        wq: WqId,
        /// Monotonic WQE index fetched.
        idx: u64,
        /// Whether it was a serialized managed fetch.
        managed: bool,
        /// How many WQEs this DMA covered (prefetch batch).
        batch: u64,
    },
    /// A PU finished issuing a WQE; data-path effects get scheduled.
    IssueDone {
        /// Queue that issued.
        wq: WqId,
        /// Monotonic WQE index issued.
        idx: u64,
    },
    /// A request message arrives at the responder QP.
    Arrive {
        /// Responder QP.
        qp: QpId,
        /// Message payload/metadata index in the in-flight table.
        msg: u64,
    },
    /// The initiator observes the completion of a WQE.
    Complete {
        /// Initiating queue.
        wq: WqId,
        /// Monotonic WQE index.
        idx: u64,
        /// In-flight table index carrying status/result.
        msg: u64,
    },
    /// A delayed CQE push (receive-side completions pay `t_cqe` before
    /// they become observable; the entry rides in the event itself so the
    /// hot path allocates nothing).
    PushCqe {
        /// Destination CQ.
        cq: CqId,
        /// The entry to push.
        cqe: Cqe,
    },
    /// A host-side callback (application logic, timers, workload
    /// generators, crash injection).
    Callback {
        /// Slab key of the boxed closure.
        key: u64,
    },
    /// Deliver queued CQ-listener notifications for a node's CQ.
    Notify {
        /// CQ listener slab key.
        key: u64,
    },
}

/// An event with its firing time and tie-breaking sequence number.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// Scheduling order tie-breaker (earlier-scheduled fires first).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Near-horizon bucket width: 2^12 ps = 4.096 ns. Finer than every NIC
/// timing constant, so same-bucket collisions stay small and the per-bucket
/// sort is cheap.
const BUCKET_SHIFT: u32 = 12;
/// Buckets per wheel rotation (power of two for mask indexing). With the
/// shift above the near horizon spans ~8.4 µs — wide enough that the
/// doorbell/issue/DMA/CQE cadence of a busy simulation almost never
/// touches the overflow level.
const NUM_BUCKETS: usize = 2048;

#[inline]
fn bucket_of(at: Time) -> u64 {
    at.as_ps() >> BUCKET_SHIFT
}

/// One lane's hierarchical wheel: unsorted near-future buckets plus a
/// sorted overflow level. Invariants:
///
/// * events in `buckets` have absolute bucket index in
///   `[cursor, cursor + NUM_BUCKETS)`;
/// * events in `current` (the bucket being drained, sorted descending so
///   `Vec::pop` yields the earliest) order before everything in `buckets`;
/// * events in `overflow` had bucket index `>= cursor + NUM_BUCKETS` when
///   inserted and cascade into `buckets` as the cursor approaches —
///   always at least `NUM_BUCKETS` ticks before they could fire, so no
///   ordering is ever lost to the overflow level.
#[derive(Debug, Default)]
struct Wheel {
    buckets: Vec<Vec<Event>>,
    /// Absolute bucket index of the next bucket to drain.
    cursor: u64,
    /// Sorted (descending) run of the bucket currently draining.
    current: Vec<Event>,
    overflow: BinaryHeap<Event>,
    /// Events held in `buckets` (excludes `current` and `overflow`).
    near_len: usize,
    len: usize,
}

impl Wheel {
    fn new() -> Wheel {
        Wheel {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            ..Wheel::default()
        }
    }

    fn insert(&mut self, ev: Event) {
        let b = bucket_of(ev.at);
        self.len += 1;
        if b < self.cursor {
            // Fires inside (or before) the bucket being drained — the
            // simulator only schedules at `>= now`, so this slots into the
            // current run. Keep it sorted descending.
            let pos = self
                .current
                .partition_point(|e| (e.at, e.seq) > (ev.at, ev.seq));
            self.current.insert(pos, ev);
        } else if b < self.cursor + NUM_BUCKETS as u64 {
            self.buckets[(b as usize) & (NUM_BUCKETS - 1)].push(ev);
            self.near_len += 1;
        } else {
            self.overflow.push(ev);
        }
    }

    /// Cascade overflow events that now fall inside the near window.
    fn migrate(&mut self) {
        let limit = self.cursor + NUM_BUCKETS as u64;
        while let Some(head) = self.overflow.peek() {
            if bucket_of(head.at) >= limit {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            self.buckets[(bucket_of(ev.at) as usize) & (NUM_BUCKETS - 1)].push(ev);
            self.near_len += 1;
        }
    }

    /// Make `current` hold the next run of events (no-op if non-empty or
    /// the wheel is drained).
    fn ensure_current(&mut self) {
        if !self.current.is_empty() {
            return;
        }
        if self.near_len == 0 {
            if self.overflow.is_empty() {
                return;
            }
            // Idle jump: everything pending is past the horizon. Re-anchor
            // the (empty) wheel at the earliest overflow bucket.
            self.cursor = bucket_of(self.overflow.peek().expect("non-empty").at);
        }
        self.migrate();
        // A non-empty bucket exists within the window now.
        loop {
            let slot = (self.cursor as usize) & (NUM_BUCKETS - 1);
            if !self.buckets[slot].is_empty() {
                let mut run = std::mem::take(&mut self.buckets[slot]);
                self.near_len -= run.len();
                run.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                self.current = run;
                self.cursor += 1;
                return;
            }
            self.cursor += 1;
        }
    }

    fn pop(&mut self) -> Option<Event> {
        self.ensure_current();
        let ev = self.current.pop();
        if ev.is_some() {
            self.len -= 1;
        }
        ev
    }

    /// The next event's `(time, seq)` without popping.
    fn peek_key(&mut self) -> Option<(Time, u64)> {
        self.ensure_current();
        self.current.last().map(|e| (e.at, e.seq))
    }
}

/// The event queue: one timing wheel per lane, merged in `(time, seq)`
/// order. A single-lane queue behaves exactly like the classic global
/// queue; multi-lane configurations let callers segregate independent
/// traffic (per NIC port) onto contention-free lanes while the merge rule
/// keeps the observable order — and thus determinism — unchanged.
pub struct EventQueue {
    lanes: Vec<Wheel>,
    next_seq: u64,
    processed: u64,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Create an empty single-lane queue.
    pub fn new() -> EventQueue {
        EventQueue::with_lanes(1)
    }

    /// Create an empty queue with `lanes` wheels (clamped to at least 1).
    pub fn with_lanes(lanes: usize) -> EventQueue {
        EventQueue {
            lanes: (0..lanes.max(1)).map(|_| Wheel::new()).collect(),
            next_seq: 0,
            processed: 0,
        }
    }

    /// Number of lanes the queue is sharded into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Schedule `kind` at absolute time `at` (lane 0).
    pub fn schedule(&mut self, at: Time, kind: EventKind) {
        self.schedule_lane(at, 0, kind);
    }

    /// Schedule `kind` at absolute time `at` on `lane` (wrapped into
    /// range). Lane choice never affects the pop order — only which wheel
    /// absorbs the scheduling work.
    pub fn schedule_lane(&mut self, at: Time, lane: usize, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let n = self.lanes.len();
        self.lanes[lane % n].insert(Event { at, seq, kind });
    }

    /// Pop the next event (earliest time, then earliest scheduled — a
    /// global total order across all lanes).
    pub fn pop(&mut self) -> Option<Event> {
        let ev = if self.lanes.len() == 1 {
            self.lanes[0].pop()
        } else {
            let mut best: Option<(usize, (Time, u64))> = None;
            for i in 0..self.lanes.len() {
                if let Some(key) = self.lanes[i].peek_key() {
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((i, key));
                    }
                }
            }
            let (lane, _) = best?;
            self.lanes[lane].pop()
        };
        if ev.is_some() {
            self.processed += 1;
        }
        ev
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.lanes
            .iter_mut()
            .filter_map(|l| l.peek_key())
            .min()
            .map(|(at, _)| at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len).sum()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.len == 0)
    }

    /// Events processed so far (for the runaway-program budget).
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// The pre-wheel global `BinaryHeap` queue, kept (API-compatible with
/// [`EventQueue`]'s hot methods) as the committed baseline the
/// `sim_events` wheel-vs-heap bench and its CI gate compare against.
#[derive(Default)]
pub struct BaselineHeapQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    processed: u64,
}

impl BaselineHeapQueue {
    /// Create an empty queue.
    pub fn new() -> BaselineHeapQueue {
        BaselineHeapQueue::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the next event (earliest time, then earliest scheduled).
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if e.is_some() {
            self.processed += 1;
        }
        e
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A single FIFO server: jobs occupy it back to back.
///
/// Used for the serialized per-port resources: the managed-WQE fetch
/// engine (Table 4's "NIC PU" bottleneck) and the atomic engine (Table 3's
/// 8.4 M CAS/s ceiling).
#[derive(Clone, Debug, Default)]
pub struct FifoResource {
    free_at: Time,
    busy_total: Time,
}

impl FifoResource {
    /// Create an idle resource.
    pub fn new() -> FifoResource {
        FifoResource::default()
    }

    /// Acquire the resource at `now` for `dur`. Returns the time the work
    /// *finishes* (queueing behind earlier acquisitions if necessary).
    pub fn acquire(&mut self, now: Time, dur: Time) -> Time {
        let start = now.max(self.free_at);
        self.free_at = start + dur;
        self.busy_total += dur;
        self.free_at
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total busy time accumulated (utilization accounting).
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }
}

/// A pool of identical FIFO servers (CPU cores, processing units).
/// Jobs go to the earliest-free server.
///
/// Earliest-free selection runs off a lazy min-heap of
/// `(free_at, server)` entries rather than an O(n) scan — wide PU pools
/// made the scan hot. Entries go stale when a server is re-acquired (each
/// acquire pushes the new finish time); stale entries are skipped on pop
/// by checking against the authoritative `free_at` table. Tie-breaking is
/// identical to the old first-minimum scan: the heap orders by
/// `(free_at, server index)`, so equal times pick the lowest index.
#[derive(Clone, Debug)]
pub struct PoolResource {
    free_at: Vec<Time>,
    ready: BinaryHeap<std::cmp::Reverse<(Time, usize)>>,
    busy_total: Time,
}

impl PoolResource {
    /// A pool of `n` servers.
    pub fn new(n: usize) -> PoolResource {
        assert!(n > 0);
        PoolResource {
            free_at: vec![Time::ZERO; n],
            ready: (0..n).map(|i| std::cmp::Reverse((Time::ZERO, i))).collect(),
            busy_total: Time::ZERO,
        }
    }

    /// Acquire any server at `now` for `dur`; returns (server, finish).
    pub fn acquire(&mut self, now: Time, dur: Time) -> (usize, Time) {
        let i = loop {
            let std::cmp::Reverse((t, i)) = *self.ready.peek().expect("non-empty pool");
            if self.free_at[i] == t {
                self.ready.pop();
                break i;
            }
            // Stale entry: the server was re-acquired (pinned or pooled)
            // after this entry was pushed.
            self.ready.pop();
        };
        let start = now.max(self.free_at[i]);
        self.free_at[i] = start + dur;
        self.busy_total += dur;
        self.ready.push(std::cmp::Reverse((self.free_at[i], i)));
        self.maybe_compact();
        (i, self.free_at[i])
    }

    /// Acquire a *specific* server (PU pinning). Returns `(start, finish)`
    /// — callers that pace chains need the actual start time.
    pub fn acquire_at(&mut self, server: usize, now: Time, dur: Time) -> (Time, Time) {
        let start = now.max(self.free_at[server]);
        self.free_at[server] = start + dur;
        self.busy_total += dur;
        self.ready
            .push(std::cmp::Reverse((self.free_at[server], server)));
        self.maybe_compact();
        (start, self.free_at[server])
    }

    /// Drop accumulated stale entries once they dominate the heap (only
    /// reachable under heavy pinned/pooled mixing; keeps the heap O(n)).
    fn maybe_compact(&mut self) {
        if self.ready.len() > 4 * self.free_at.len().max(8) {
            self.ready = self
                .free_at
                .iter()
                .enumerate()
                .map(|(i, t)| std::cmp::Reverse((*t, i)))
                .collect();
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the pool is empty (never true — pools have ≥ 1 server).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// How many servers are busy at `now`.
    pub fn busy_at(&self, now: Time) -> usize {
        self.free_at.iter().filter(|t| **t > now).count()
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }
}

/// Identifies a host node's core pool (newtype for readability).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorePool(pub NodeId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(5), EventKind::WqAdvance { wq: WqId(0) });
        q.schedule(Time::from_us(1), EventKind::WqAdvance { wq: WqId(1) });
        q.schedule(Time::from_us(1), EventKind::WqAdvance { wq: WqId(2) });
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.at, Time::from_us(1));
        // Same-time events keep scheduling order.
        match (a.kind, b.kind) {
            (EventKind::WqAdvance { wq: w1 }, EventKind::WqAdvance { wq: w2 }) => {
                assert_eq!(w1, WqId(1));
                assert_eq!(w2, WqId(2));
            }
            _ => panic!("wrong kinds"),
        }
        assert_eq!(c.at, Time::from_us(5));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    /// Drive a queue through a deterministic pseudo-random schedule/pop
    /// mix and return the observed `(time, seq)` order.
    fn churn(
        mut schedule: impl FnMut(Time),
        mut pop: impl FnMut() -> Option<(Time, u64)>,
    ) -> Vec<(Time, u64)> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut order = Vec::new();
        let mut now = Time::ZERO;
        for round in 0..200 {
            for _ in 0..(rng() % 50) {
                // Mix of near (same-bucket), mid-horizon and far-future
                // times, always >= now (the simulator's invariant).
                let delta = match rng() % 4 {
                    0 => rng() % 1_000,      // same/adjacent bucket
                    1 => rng() % 100_000,    // near window
                    2 => rng() % 10_000_000, // past the wheel horizon
                    _ => rng() % 200,        // dense ties
                };
                schedule(now + Time::from_ps(delta));
            }
            for _ in 0..(rng() % 40 + if round > 150 { 60 } else { 0 }) {
                match pop() {
                    Some((at, seq)) => {
                        now = at;
                        order.push((at, seq));
                    }
                    None => break,
                }
            }
        }
        while let Some((at, seq)) = pop() {
            order.push((at, seq));
        }
        order
    }

    #[test]
    fn wheel_matches_baseline_heap_order_exactly() {
        use std::cell::RefCell;
        let wheel = RefCell::new(EventQueue::new());
        let wheel_order = churn(
            |at| {
                wheel
                    .borrow_mut()
                    .schedule(at, EventKind::WqAdvance { wq: WqId(0) })
            },
            || wheel.borrow_mut().pop().map(|e| (e.at, e.seq)),
        );
        let heap = RefCell::new(BaselineHeapQueue::new());
        let heap_order = churn(
            |at| {
                heap.borrow_mut()
                    .schedule(at, EventKind::WqAdvance { wq: WqId(0) })
            },
            || heap.borrow_mut().pop().map(|e| (e.at, e.seq)),
        );
        assert_eq!(wheel_order.len(), heap_order.len());
        assert_eq!(
            wheel_order, heap_order,
            "wheel must replay the heap's exact order"
        );
        // And the order is the (time, seq) total order.
        for w in wheel_order.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn multi_lane_merge_preserves_global_order() {
        use std::cell::RefCell;
        for lanes in [2usize, 3, 8] {
            let q = RefCell::new(EventQueue::with_lanes(lanes));
            let lane = RefCell::new(0usize);
            let order = churn(
                |at| {
                    let mut l = lane.borrow_mut();
                    *l += 1;
                    q.borrow_mut()
                        .schedule_lane(at, *l, EventKind::WqAdvance { wq: WqId(0) });
                },
                || q.borrow_mut().pop().map(|e| (e.at, e.seq)),
            );
            let single = RefCell::new(EventQueue::new());
            let single_order = churn(
                |at| {
                    single
                        .borrow_mut()
                        .schedule(at, EventKind::WqAdvance { wq: WqId(0) })
                },
                || single.borrow_mut().pop().map(|e| (e.at, e.seq)),
            );
            assert_eq!(
                order, single_order,
                "{lanes}-lane order differs from 1-lane"
            );
        }
    }

    #[test]
    fn far_future_events_cascade_through_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the near horizon (seconds vs the ~8 µs window).
        q.schedule(Time::from_secs(2), EventKind::WqAdvance { wq: WqId(2) });
        q.schedule(Time::from_ms(1), EventKind::WqAdvance { wq: WqId(1) });
        q.schedule(Time::from_ns(10), EventKind::WqAdvance { wq: WqId(0) });
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.at)).collect();
        assert_eq!(
            order,
            vec![Time::from_ns(10), Time::from_ms(1), Time::from_secs(2)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_resource_queues_back_to_back() {
        let mut r = FifoResource::new();
        let t1 = r.acquire(Time::from_us(0), Time::from_us(2));
        assert_eq!(t1, Time::from_us(2));
        // Second job at t=1 queues behind the first.
        let t2 = r.acquire(Time::from_us(1), Time::from_us(2));
        assert_eq!(t2, Time::from_us(4));
        // A job after the queue drains starts immediately.
        let t3 = r.acquire(Time::from_us(10), Time::from_us(1));
        assert_eq!(t3, Time::from_us(11));
        assert_eq!(r.busy_total(), Time::from_us(5));
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut p = PoolResource::new(2);
        let (s0, f0) = p.acquire(Time::ZERO, Time::from_us(4));
        let (s1, f1) = p.acquire(Time::ZERO, Time::from_us(1));
        assert_ne!(s0, s1);
        assert_eq!(f0, Time::from_us(4));
        assert_eq!(f1, Time::from_us(1));
        // Next job lands on the server that freed first.
        let (s2, f2) = p.acquire(Time::from_us(2), Time::from_us(1));
        assert_eq!(s2, s1);
        assert_eq!(f2, Time::from_us(3));
        assert_eq!(p.busy_at(Time::from_ps(3_500_000)), 1);
    }

    #[test]
    fn pinned_acquire_serializes_on_one_server() {
        let mut p = PoolResource::new(4);
        let (s1, f1) = p.acquire_at(2, Time::ZERO, Time::from_us(1));
        let (s2, f2) = p.acquire_at(2, Time::ZERO, Time::from_us(1));
        assert_eq!((s1, f1), (Time::ZERO, Time::from_us(1)));
        assert_eq!((s2, f2), (Time::from_us(1), Time::from_us(2)));
        // Other servers unaffected.
        let (_, f3) = p.acquire(Time::ZERO, Time::from_us(1));
        assert_eq!(f3, Time::from_us(1));
    }

    /// Reference implementation of the old O(n) first-minimum scan, used
    /// to prove the heap-backed pool makes identical choices.
    #[derive(Clone)]
    struct ScanPool {
        free_at: Vec<Time>,
    }
    impl ScanPool {
        fn acquire(&mut self, now: Time, dur: Time) -> (usize, Time) {
            let (i, _) = self
                .free_at
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| **t)
                .expect("non-empty pool");
            let start = now.max(self.free_at[i]);
            self.free_at[i] = start + dur;
            (i, self.free_at[i])
        }
        fn acquire_at(&mut self, server: usize, now: Time, dur: Time) -> (Time, Time) {
            let start = now.max(self.free_at[server]);
            self.free_at[server] = start + dur;
            (start, self.free_at[server])
        }
    }

    #[test]
    fn pool_heap_matches_linear_scan_choice_and_tiebreak() {
        // Satellite regression for the O(n) min-scan fix: under a long
        // deterministic mix of pooled and pinned acquisitions — including
        // many exact ties — the heap-backed pool must pick the same
        // server and finish time as the first-minimum linear scan did.
        let n = 16;
        let mut heap_pool = PoolResource::new(n);
        let mut scan_pool = ScanPool {
            free_at: vec![Time::ZERO; n],
        };
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = Time::ZERO;
        for step in 0..5_000 {
            now += Time::from_ps(rng() % 3_000);
            // Coarse durations force frequent free_at ties across servers.
            let dur = Time::from_ns((rng() % 4) * 100);
            if step % 5 == 0 {
                let server = (rng() % n as u64) as usize;
                let a = heap_pool.acquire_at(server, now, dur);
                let b = scan_pool.acquire_at(server, now, dur);
                assert_eq!(a, b, "pinned acquire diverged at step {step}");
            } else {
                let a = heap_pool.acquire(now, dur);
                let b = scan_pool.acquire(now, dur);
                assert_eq!(a, b, "pooled acquire diverged at step {step}");
            }
        }
        // The lazy heap stays bounded.
        assert!(heap_pool.ready.len() <= 4 * n.max(8));
    }

    #[test]
    fn pool_tie_break_picks_lowest_index() {
        let mut p = PoolResource::new(4);
        // All servers free at ZERO: ties must resolve to server 0, then 1…
        let (s0, _) = p.acquire(Time::ZERO, Time::from_us(2));
        let (s1, _) = p.acquire(Time::ZERO, Time::from_us(2));
        assert_eq!((s0, s1), (0, 1));
        // Servers 0/1 busy until 2 µs; 2 and 3 tie free at 1 µs — the
        // lower index wins the tie, as the linear scan always did.
        let _ = p.acquire_at(2, Time::ZERO, Time::from_us(1));
        let _ = p.acquire_at(3, Time::ZERO, Time::from_us(1));
        let (s, _) = p.acquire(Time::from_us(1), Time::from_us(1));
        assert_eq!(s, 2);
    }
}
