//! The discrete-event core: a deterministic event queue and FIFO resource
//! models.
//!
//! Determinism is a hard requirement — benchmarks must be reproducible run
//! to run — so events are ordered by `(time, sequence_number)` with the
//! sequence number assigned at scheduling time. No wall-clock, no hashing
//! order, no thread interleaving.

use crate::ids::{NodeId, QpId, WqId};
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Core simulator events. Host-side application logic is expressed through
/// `Callback` events whose closures live in the simulator's callback slab.
#[derive(Debug)]
pub enum EventKind {
    /// Try to make progress on a send queue (fetch/issue the next WQE).
    WqAdvance {
        /// Queue to advance.
        wq: WqId,
    },
    /// A WQE fetch DMA finished; the snapshot is taken when this fires.
    FetchDone {
        /// Queue that fetched.
        wq: WqId,
        /// Monotonic WQE index fetched.
        idx: u64,
        /// Whether it was a serialized managed fetch.
        managed: bool,
        /// How many WQEs this DMA covered (prefetch batch).
        batch: u64,
    },
    /// A PU finished issuing a WQE; data-path effects get scheduled.
    IssueDone {
        /// Queue that issued.
        wq: WqId,
        /// Monotonic WQE index issued.
        idx: u64,
    },
    /// A request message arrives at the responder QP.
    Arrive {
        /// Responder QP.
        qp: QpId,
        /// Message payload/metadata index in the in-flight table.
        msg: u64,
    },
    /// The initiator observes the completion of a WQE.
    Complete {
        /// Initiating queue.
        wq: WqId,
        /// Monotonic WQE index.
        idx: u64,
        /// In-flight table index carrying status/result.
        msg: u64,
    },
    /// A host-side callback (application logic, timers, workload
    /// generators, crash injection).
    Callback {
        /// Slab key of the boxed closure.
        key: u64,
    },
    /// Deliver queued CQ-listener notifications for a node's CQ.
    Notify {
        /// CQ listener slab key.
        key: u64,
    },
}

/// An event with its firing time and tie-breaking sequence number.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// Scheduling order tie-breaker (earlier-scheduled fires first).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    processed: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the next event (earliest time, then earliest scheduled).
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.heap.pop();
        if e.is_some() {
            self.processed += 1;
        }
        e
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events processed so far (for the runaway-program budget).
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// A single FIFO server: jobs occupy it back to back.
///
/// Used for the serialized per-port resources: the managed-WQE fetch
/// engine (Table 4's "NIC PU" bottleneck) and the atomic engine (Table 3's
/// 8.4 M CAS/s ceiling).
#[derive(Clone, Debug, Default)]
pub struct FifoResource {
    free_at: Time,
    busy_total: Time,
}

impl FifoResource {
    /// Create an idle resource.
    pub fn new() -> FifoResource {
        FifoResource::default()
    }

    /// Acquire the resource at `now` for `dur`. Returns the time the work
    /// *finishes* (queueing behind earlier acquisitions if necessary).
    pub fn acquire(&mut self, now: Time, dur: Time) -> Time {
        let start = now.max(self.free_at);
        self.free_at = start + dur;
        self.busy_total += dur;
        self.free_at
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total busy time accumulated (utilization accounting).
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }
}

/// A pool of identical FIFO servers (CPU cores, processing units).
/// Jobs go to the earliest-free server.
#[derive(Clone, Debug)]
pub struct PoolResource {
    free_at: Vec<Time>,
    busy_total: Time,
}

impl PoolResource {
    /// A pool of `n` servers.
    pub fn new(n: usize) -> PoolResource {
        assert!(n > 0);
        PoolResource {
            free_at: vec![Time::ZERO; n],
            busy_total: Time::ZERO,
        }
    }

    /// Acquire any server at `now` for `dur`; returns (server, finish).
    pub fn acquire(&mut self, now: Time, dur: Time) -> (usize, Time) {
        let (i, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("non-empty pool");
        let start = now.max(self.free_at[i]);
        self.free_at[i] = start + dur;
        self.busy_total += dur;
        (i, self.free_at[i])
    }

    /// Acquire a *specific* server (PU pinning). Returns `(start, finish)`
    /// — callers that pace chains need the actual start time.
    pub fn acquire_at(&mut self, server: usize, now: Time, dur: Time) -> (Time, Time) {
        let start = now.max(self.free_at[server]);
        self.free_at[server] = start + dur;
        self.busy_total += dur;
        (start, self.free_at[server])
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the pool is empty (never true — pools have ≥ 1 server).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }

    /// How many servers are busy at `now`.
    pub fn busy_at(&self, now: Time) -> usize {
        self.free_at.iter().filter(|t| **t > now).count()
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }
}

/// Identifies a host node's core pool (newtype for readability).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorePool(pub NodeId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_us(5), EventKind::WqAdvance { wq: WqId(0) });
        q.schedule(Time::from_us(1), EventKind::WqAdvance { wq: WqId(1) });
        q.schedule(Time::from_us(1), EventKind::WqAdvance { wq: WqId(2) });
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a.at, Time::from_us(1));
        // Same-time events keep scheduling order.
        match (a.kind, b.kind) {
            (EventKind::WqAdvance { wq: w1 }, EventKind::WqAdvance { wq: w2 }) => {
                assert_eq!(w1, WqId(1));
                assert_eq!(w2, WqId(2));
            }
            _ => panic!("wrong kinds"),
        }
        assert_eq!(c.at, Time::from_us(5));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn fifo_resource_queues_back_to_back() {
        let mut r = FifoResource::new();
        let t1 = r.acquire(Time::from_us(0), Time::from_us(2));
        assert_eq!(t1, Time::from_us(2));
        // Second job at t=1 queues behind the first.
        let t2 = r.acquire(Time::from_us(1), Time::from_us(2));
        assert_eq!(t2, Time::from_us(4));
        // A job after the queue drains starts immediately.
        let t3 = r.acquire(Time::from_us(10), Time::from_us(1));
        assert_eq!(t3, Time::from_us(11));
        assert_eq!(r.busy_total(), Time::from_us(5));
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut p = PoolResource::new(2);
        let (s0, f0) = p.acquire(Time::ZERO, Time::from_us(4));
        let (s1, f1) = p.acquire(Time::ZERO, Time::from_us(1));
        assert_ne!(s0, s1);
        assert_eq!(f0, Time::from_us(4));
        assert_eq!(f1, Time::from_us(1));
        // Next job lands on the server that freed first.
        let (s2, f2) = p.acquire(Time::from_us(2), Time::from_us(1));
        assert_eq!(s2, s1);
        assert_eq!(f2, Time::from_us(3));
        assert_eq!(p.busy_at(Time::from_ps(3_500_000)), 1);
    }

    #[test]
    fn pinned_acquire_serializes_on_one_server() {
        let mut p = PoolResource::new(4);
        let (s1, f1) = p.acquire_at(2, Time::ZERO, Time::from_us(1));
        let (s2, f2) = p.acquire_at(2, Time::ZERO, Time::from_us(1));
        assert_eq!((s1, f1), (Time::ZERO, Time::from_us(1)));
        assert_eq!((s2, f2), (Time::from_us(1), Time::from_us(2)));
        // Other servers unaffected.
        let (_, f3) = p.acquire(Time::ZERO, Time::from_us(1));
        assert_eq!(f3, Time::from_us(1));
    }
}
