//! The simulator facade: owns all state and drives the event loop.
//!
//! One [`Simulator`] holds every node (host memory + CPU model + NIC),
//! the fabric between them, and the discrete-event queue. All public
//! operations (allocating memory, creating queues, posting work requests)
//! are instantaneous control-plane actions; simulated time only advances
//! inside [`Simulator::run`] and friends.
//!
//! The WQE lifecycle implemented here:
//!
//! ```text
//! post_send ──► WQE bytes in host memory ──► doorbell
//!                                              │ t_doorbell
//!                          fetch (batch DMA or serialized managed fetch)
//!                                              │ snapshot bytes
//!                          issue on the queue's PU (decode at issue)
//!                                              │ t_issue(class)
//!              data path: PCIe stages / wire / atomic engine / RECV consume
//!                                              │
//!                          Complete: writebacks, CQE, WAIT wake-ups
//! ```
//!
//! Self-modification falls out of the byte-level fetch: any verb that
//! writes into a WQ ring changes what a later fetch decodes — but *only*
//! fetches that happen after the write, which is why managed queues
//! (fetch gated by ENABLE) are required for correctness, exactly as in the
//! paper (§3.1–§3.2).

use crate::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use crate::cq::{CompletionQueue, Cqe, CqeStatus};
use crate::engine::{EventKind, EventQueue};
use crate::error::{Error, Result};
use crate::host::Host;
use crate::ids::{CqId, NodeId, ProcessId, QpId, WqId};
use crate::mem::{Access, HostMemory, MemoryRegion};
use crate::net::{InFlight, Payload};
use crate::nic::Nic;
use crate::qp::{QpConfig, QueuePair};
use crate::rate::RateLimiter;
use crate::slab::{BufPool, Slab};
use crate::time::Time;
use crate::trace::{Trace, TraceEvent};
use crate::verbs::Opcode;
use crate::wq::{WorkQueue, WqBlock, WqKind};
use crate::wqe::{Sge, WorkRequest, Wqe, SGE_SIZE, WQE_SIZE};

/// Redelivery delay after receiver-not-ready (RC RNR NAK back-off).
const RNR_DELAY: Time = Time::from_us(1);
/// Delay before an arrival at a dead QP fails back to the initiator.
const DEAD_QP_TIMEOUT: Time = Time::from_us(100);

/// How a host thread observes completions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListenMode {
    /// Busy-polling thread: pickup within
    /// [`HostConfig::t_poll_pickup`](crate::config::HostConfig).
    Polling,
    /// Blocking thread woken by a completion event: pays
    /// [`HostConfig::t_event_wake`](crate::config::HostConfig).
    Event,
}

/// Callback invoked per completion by a CQ listener.
pub type CqCallback = Box<dyn FnMut(&mut Simulator, Cqe)>;
/// One-shot scheduled host action.
pub type TimerCallback = Box<dyn FnOnce(&mut Simulator)>;

struct CqListener {
    cq: CqId,
    node: NodeId,
    mode: ListenMode,
    cb: Option<CqCallback>,
    scheduled: bool,
}

/// Utilization snapshot of one NIC's resources — used by the Table 4
/// harness to name the bottleneck.
#[derive(Clone, Debug, Default)]
pub struct NicUtilization {
    /// Busy time summed over all PUs.
    pub pu_busy: Time,
    /// Managed-fetch engine busy time (summed over ports).
    pub fetch_busy: Time,
    /// Atomic engine busy time (summed over ports).
    pub atomic_busy: Time,
    /// Link egress busy time (summed over ports).
    pub link_busy: Time,
    /// PCIe bus busy time.
    pub pcie_busy: Time,
}

/// The top-level simulator. See the module docs.
pub struct Simulator {
    cfg: SimConfig,
    now: Time,
    events: EventQueue,
    mems: Vec<HostMemory>,
    nics: Vec<Nic>,
    hosts: Vec<Host>,
    node_names: Vec<String>,
    /// Dense one-way link latency table, `links[a][b]` — the per-arrival
    /// lookup must not hash.
    links: Vec<Vec<Option<Time>>>,
    qps: Vec<QueuePair>,
    qp_owner: Vec<ProcessId>,
    wqs: Vec<WorkQueue>,
    cqs: Vec<CompletionQueue>,
    inflight: Slab<InFlight>,
    callbacks: Slab<TimerCallback>,
    listeners: Slab<CqListener>,
    /// Recycled payload/result byte buffers (see [`BufPool`]).
    buf_pool: BufPool,
    /// Reusable scratch for WAIT wake-ups inside `push_cqe`.
    woken_buf: Vec<WqId>,
    /// Reusable scratch for listener poll batches inside `on_notify`.
    notify_buf: Vec<Cqe>,
    trace: Trace,
}

impl Simulator {
    /// Create an empty simulator.
    pub fn new(cfg: SimConfig) -> Simulator {
        let trace = Trace::new(cfg.trace);
        let events = EventQueue::with_lanes(cfg.lanes);
        Simulator {
            cfg,
            now: Time::ZERO,
            events,
            mems: Vec::new(),
            nics: Vec::new(),
            hosts: Vec::new(),
            node_names: Vec::new(),
            links: Vec::new(),
            qps: Vec::new(),
            qp_owner: Vec::new(),
            wqs: Vec::new(),
            cqs: Vec::new(),
            inflight: Slab::new(),
            callbacks: Slab::new(),
            listeners: Slab::new(),
            buf_pool: BufPool::new(),
            woken_buf: Vec::new(),
            notify_buf: Vec::new(),
            trace,
        }
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Add a host (memory + CPU + NIC). Returns its id.
    pub fn add_node(&mut self, name: &str, host: HostConfig, nic: NicConfig) -> NodeId {
        let id = NodeId(self.mems.len() as u32);
        self.mems.push(HostMemory::new(id, host.dram_bytes));
        self.hosts.push(Host::new(id, host));
        self.nics.push(Nic::new(nic));
        self.node_names.push(name.to_string());
        for row in &mut self.links {
            row.push(None);
        }
        self.links.push(vec![None; self.mems.len()]);
        id
    }

    /// Connect two nodes with a bidirectional link.
    pub fn connect_nodes(&mut self, a: NodeId, b: NodeId, link: LinkConfig) {
        assert_ne!(a, b, "loopback needs no link");
        self.links[a.index()][b.index()] = Some(link.one_way);
        self.links[b.index()][a.index()] = Some(link.one_way);
    }

    /// Connect every pair of `nodes` with identical bidirectional links —
    /// the full-mesh wiring a multi-node serving cluster assumes (each
    /// shard primary forwards to backups on any other node). Existing
    /// links between listed pairs are overwritten.
    pub fn connect_mesh(&mut self, nodes: &[NodeId], link: LinkConfig) {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                self.connect_nodes(a, b, link.clone());
            }
        }
    }

    fn one_way(&self, a: NodeId, b: NodeId) -> Option<Time> {
        if a == b {
            return Some(Time::ZERO);
        }
        self.links[a.index()][b.index()]
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// NIC configuration of a node.
    pub fn nic_config(&self, node: NodeId) -> &NicConfig {
        &self.nics[node.index()].config
    }

    /// Host configuration of a node.
    pub fn host_config(&self, node: NodeId) -> &HostConfig {
        &self.hosts[node.index()].config
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocate `len` bytes (aligned) in a node's DRAM.
    pub fn alloc(&mut self, node: NodeId, len: u64, align: u64) -> Result<u64> {
        self.mems[node.index()].alloc(len, align)
    }

    /// Register a memory region owned by the node's init process.
    pub fn register_mr(
        &mut self,
        node: NodeId,
        addr: u64,
        len: u64,
        access: Access,
    ) -> Result<MemoryRegion> {
        self.register_mr_owned(node, addr, len, access, ProcessId(0))
    }

    /// Register a memory region with an explicit owning process.
    pub fn register_mr_owned(
        &mut self,
        node: NodeId,
        addr: u64,
        len: u64,
        access: Access,
        owner: ProcessId,
    ) -> Result<MemoryRegion> {
        self.mems[node.index()].register(addr, len, access, owner)
    }

    /// Host CPU write (no key checks).
    pub fn mem_write(&mut self, node: NodeId, addr: u64, bytes: &[u8]) -> Result<()> {
        self.mems[node.index()].write(addr, bytes)
    }

    /// Host CPU read (no key checks).
    pub fn mem_read(&self, node: NodeId, addr: u64, len: u64) -> Result<Vec<u8>> {
        Ok(self.mems[node.index()].read(addr, len)?.to_vec())
    }

    /// Host CPU u64 write.
    pub fn mem_write_u64(&mut self, node: NodeId, addr: u64, v: u64) -> Result<()> {
        self.mems[node.index()].write_u64(addr, v)
    }

    /// Host CPU u64 read.
    pub fn mem_read_u64(&self, node: NodeId, addr: u64) -> Result<u64> {
        self.mems[node.index()].read_u64(addr)
    }

    /// Direct access to a node's memory (advanced use: substrates that
    /// build in-memory structures, e.g. hash tables).
    pub fn mem(&mut self, node: NodeId) -> &mut HostMemory {
        &mut self.mems[node.index()]
    }

    /// The registered region `key` resolves to on `node` (rkey when
    /// `remote`, lkey otherwise), or `None` when unregistered there — the
    /// read-only lookup deploy-time bounds analysis runs against.
    pub fn mr_by_key(&self, node: NodeId, key: u32, remote: bool) -> Option<&MemoryRegion> {
        self.mems[node.index()].region_by_key(key, remote)
    }

    // ------------------------------------------------------------------
    // Queues
    // ------------------------------------------------------------------

    /// Create a completion queue.
    pub fn create_cq(&mut self, node: NodeId, depth: u32) -> Result<CqId> {
        let max = self.nics[node.index()].config.max_cq_depth as u32;
        if depth == 0 || depth > max {
            return Err(Error::InvalidWr("bad CQ depth"));
        }
        let id = CqId(self.cqs.len() as u32);
        self.cqs.push(CompletionQueue::new(id, node, depth));
        Ok(id)
    }

    /// Create a queue pair owned by the node's init process.
    pub fn create_qp(&mut self, node: NodeId, cfg: QpConfig) -> Result<QpId> {
        self.create_qp_owned(node, cfg, ProcessId(0))
    }

    /// Create a queue pair owned by `owner`; its rings die with the owner
    /// (unless the owner is a long-lived hull process — §5.6).
    pub fn create_qp_owned(
        &mut self,
        node: NodeId,
        cfg: QpConfig,
        owner: ProcessId,
    ) -> Result<QpId> {
        let nic_cfg = self.nics[node.index()].config.clone();
        if cfg.port >= nic_cfg.ports {
            return Err(Error::InvalidWr("port out of range"));
        }
        if cfg.sq_depth == 0
            || cfg.rq_depth == 0
            || cfg.sq_depth as usize > nic_cfg.max_wq_depth
            || cfg.rq_depth as usize > nic_cfg.max_wq_depth
        {
            return Err(Error::InvalidWr("bad WQ depth"));
        }
        for cq in [cfg.send_cq, cfg.recv_cq] {
            let cq = self
                .cqs
                .get(cq.index())
                .ok_or(Error::UnknownEntity("cq", cq.0))?;
            if cq.node != node {
                return Err(Error::InvalidWr("CQ on a different node"));
            }
        }
        let sq_ring = self.alloc(node, cfg.sq_depth as u64 * WQE_SIZE, 64)?;
        let rq_ring = self.alloc(node, cfg.rq_depth as u64 * WQE_SIZE, 64)?;
        let qp_id = QpId(self.qps.len() as u32);
        let sq_id = WqId(self.wqs.len() as u32);
        let rq_id = WqId(self.wqs.len() as u32 + 1);
        let pu = self.nics[node.index()].assign_pu(cfg.port, cfg.pu);
        self.wqs.push(WorkQueue::new(
            sq_id,
            qp_id,
            node,
            WqKind::Send,
            sq_ring,
            cfg.sq_depth,
            cfg.sq_managed,
            cfg.port,
            pu,
        ));
        self.wqs.push(WorkQueue::new(
            rq_id,
            qp_id,
            node,
            WqKind::Recv,
            rq_ring,
            cfg.rq_depth,
            false,
            cfg.port,
            pu,
        ));
        self.qps.push(QueuePair::new(
            qp_id,
            node,
            sq_id,
            rq_id,
            cfg.send_cq,
            cfg.recv_cq,
            cfg.port,
        ));
        self.qp_owner.push(owner);
        Ok(qp_id)
    }

    /// Connect two QPs as an RC pair. Both directions are wired; the QPs
    /// may live on the same node (loopback).
    pub fn connect_qps(&mut self, a: QpId, b: QpId) -> Result<()> {
        if a == b {
            return Err(Error::BadQpState(a, "cannot self-connect"));
        }
        let (na, nb) = (self.qps[a.index()].node, self.qps[b.index()].node);
        if self.one_way(na, nb).is_none() {
            return Err(Error::BadQpState(a, "no link between nodes"));
        }
        if self.qps[a.index()].peer.is_some() || self.qps[b.index()].peer.is_some() {
            return Err(Error::BadQpState(a, "already connected"));
        }
        self.qps[a.index()].peer = Some(b);
        self.qps[b.index()].peer = Some(a);
        Ok(())
    }

    /// The send queue of a QP.
    pub fn sq_of(&self, qp: QpId) -> WqId {
        self.qps[qp.index()].sq
    }

    /// The receive queue of a QP.
    pub fn rq_of(&self, qp: QpId) -> WqId {
        self.qps[qp.index()].rq
    }

    /// Send-side CQ of a QP.
    pub fn send_cq_of(&self, qp: QpId) -> CqId {
        self.qps[qp.index()].send_cq
    }

    /// Receive-side CQ of a QP.
    pub fn recv_cq_of(&self, qp: QpId) -> CqId {
        self.qps[qp.index()].recv_cq
    }

    /// Node that owns a QP.
    pub fn node_of_qp(&self, qp: QpId) -> NodeId {
        self.qps[qp.index()].node
    }

    /// Node that owns a WQ.
    pub fn node_of_wq(&self, wq: WqId) -> NodeId {
        self.wqs[wq.index()].node
    }

    /// Host-memory address of the slot WQE `idx` occupies in the SQ ring.
    /// RedN constructs aim verbs at `addr + field offset` to patch WQEs.
    pub fn sq_wqe_addr(&self, qp: QpId, idx: u64) -> u64 {
        self.wqs[self.sq_of(qp).index()].slot_addr(idx)
    }

    /// Host-memory address of the slot WQE `idx` occupies in the RQ ring.
    pub fn rq_wqe_addr(&self, qp: QpId, idx: u64) -> u64 {
        self.wqs[self.rq_of(qp).index()].slot_addr(idx)
    }

    /// Number of WQEs posted to the SQ so far (the next post gets this
    /// index).
    pub fn sq_posted(&self, qp: QpId) -> u64 {
        self.wqs[self.sq_of(qp).index()].posted
    }

    /// Number of WQEs posted to the RQ so far.
    pub fn rq_posted(&self, qp: QpId) -> u64 {
        self.wqs[self.rq_of(qp).index()].posted
    }

    /// Ring depth (in WQE slots) of a work queue.
    pub fn wq_depth(&self, wq: WqId) -> u32 {
        self.wqs[wq.index()].depth
    }

    /// Make the RQ of `qp` a cyclic receive ring: the NIC re-arms consumed
    /// RECVs as the ring wraps, so the pre-posted scatter programs serve
    /// forever with no further host posts (the receive-side analogue of
    /// §3.4's WQ recycling; real NICs expose this as cyclic receive
    /// buffers). Requires the ring to be fully posted first — every slot
    /// must already hold its RECV program.
    pub fn set_rq_cyclic(&mut self, qp: QpId) -> Result<()> {
        let rq = self.rq_of(qp);
        let wq = &mut self.wqs[rq.index()];
        if wq.posted < wq.depth as u64 {
            return Err(Error::InvalidWr(
                "cyclic RQ requires a fully posted ring (post every slot first)",
            ));
        }
        wq.cyclic = true;
        Ok(())
    }

    /// Register the SQ ring of `qp` as an RDMA-accessible memory region —
    /// the paper's "code region" (§3.5 "Offload setup"): self-modifying
    /// chains need verbs that can write into the ring.
    pub fn register_sq_ring(&mut self, qp: QpId, owner: ProcessId) -> Result<MemoryRegion> {
        let wq = &self.wqs[self.sq_of(qp).index()];
        let (node, base, len) = (wq.node, wq.base_addr, wq.ring_bytes());
        self.register_mr_owned(node, base, len, Access::all(), owner)
    }

    /// Register the RQ ring of `qp` (needed when chains patch RECV WQEs).
    pub fn register_rq_ring(&mut self, qp: QpId, owner: ProcessId) -> Result<MemoryRegion> {
        let wq = &self.wqs[self.rq_of(qp).index()];
        let (node, base, len) = (wq.node, wq.base_addr, wq.ring_bytes());
        self.register_mr_owned(node, base, len, Access::all(), owner)
    }

    /// Rate-limit a QP's send queue (`ibv_modify_qp_rate_limit`).
    pub fn set_rate_limit(&mut self, qp: QpId, ops_per_sec: f64, burst: u64) {
        let sq = self.sq_of(qp);
        let wq = &mut self.wqs[sq.index()];
        wq.rate_limiter = Some(RateLimiter::new(ops_per_sec, burst));
        wq.rate_ops_per_sec = Some(ops_per_sec);
    }

    // ------------------------------------------------------------------
    // Posting
    // ------------------------------------------------------------------

    /// Post one work request to a QP's send queue. Serializes the WQE into
    /// the ring in host memory and (for unmanaged queues) rings the
    /// doorbell. Returns the WQE's monotonic index.
    pub fn post_send(&mut self, qp: QpId, wr: WorkRequest) -> Result<u64> {
        let idx = self.post_send_quiet(qp, wr)?;
        let sq = self.sq_of(qp);
        if !self.wqs[sq.index()].managed {
            self.ring_doorbell(qp)?;
        }
        Ok(idx)
    }

    /// Post a batch with a single doorbell.
    pub fn post_send_batch(&mut self, qp: QpId, wrs: &[WorkRequest]) -> Result<u64> {
        let mut first = 0;
        for (i, wr) in wrs.iter().enumerate() {
            let idx = self.post_send_quiet(qp, *wr)?;
            if i == 0 {
                first = idx;
            }
        }
        let sq = self.sq_of(qp);
        if !self.wqs[sq.index()].managed {
            self.ring_doorbell(qp)?;
        }
        Ok(first)
    }

    /// Post without ringing any doorbell (managed queues, or pre-staging).
    pub fn post_send_quiet(&mut self, qp: QpId, wr: WorkRequest) -> Result<u64> {
        if wr.wqe.opcode == Opcode::Recv {
            return Err(Error::InvalidWr("RECV posted to a send queue"));
        }
        let sq = self.sq_of(qp);
        let (addr, idx) = {
            let wq = &self.wqs[sq.index()];
            if wq.block == WqBlock::Dead {
                return Err(Error::BadQpState(qp, "QP is dead"));
            }
            if !wq.has_room() {
                return Err(Error::WqFull(sq));
            }
            (wq.slot_addr(wq.posted), wq.posted)
        };
        let node = self.wqs[sq.index()].node;
        self.mems[node.index()].write(addr, &wr.wqe.encode())?;
        self.wqs[sq.index()].posted += 1;
        Ok(idx)
    }

    /// Overwrite the WQE at `idx` in the SQ ring (host-side re-arming,
    /// e.g. re-initializing a recycled chain between runs).
    pub fn rewrite_sq_wqe(&mut self, qp: QpId, idx: u64, wr: WorkRequest) -> Result<()> {
        let addr = self.sq_wqe_addr(qp, idx);
        let node = self.node_of_qp(qp);
        self.mems[node.index()].write(addr, &wr.wqe.encode())
    }

    /// Post a receive.
    pub fn post_recv(&mut self, qp: QpId, wr: WorkRequest) -> Result<u64> {
        if wr.wqe.opcode != Opcode::Recv {
            return Err(Error::InvalidWr(
                "only RECV may be posted to a receive queue",
            ));
        }
        let rq = self.rq_of(qp);
        let (addr, idx) = {
            let wq = &self.wqs[rq.index()];
            if wq.block == WqBlock::Dead {
                return Err(Error::BadQpState(qp, "QP is dead"));
            }
            if !wq.has_room() {
                return Err(Error::WqFull(rq));
            }
            (wq.slot_addr(wq.posted), wq.posted)
        };
        let node = self.wqs[rq.index()].node;
        self.mems[node.index()].write(addr, &wr.wqe.encode())?;
        self.wqs[rq.index()].posted += 1;
        // Receiver-not-ready retry: a parked arrival gets another chance.
        if let Some(msg) = self.qps[qp.index()].rnr_queue.pop_front() {
            self.events
                .schedule(self.now + RNR_DELAY, EventKind::Arrive { qp, msg });
        }
        Ok(idx)
    }

    /// Host-side ENABLE of a managed queue: raise its fetch limit to
    /// `count` (absolute) and kick it after the doorbell latency. This is
    /// what the driver does when the host itself releases a managed chain,
    /// as opposed to an ENABLE verb doing it from another queue.
    pub fn host_enable(&mut self, qp: QpId, count: u64) -> Result<()> {
        let sq = self.sq_of(qp);
        let node = self.wqs[sq.index()].node;
        let t = self.nics[node.index()].config.t_doorbell;
        {
            let wq = &mut self.wqs[sq.index()];
            wq.enabled_until = wq.enabled_until.max(count);
            // A host enable is an MMIO write, same as a doorbell — counted
            // so artifacts can prove the CPU left the steady-state loop.
            wq.stat_doorbells += 1;
        }
        self.trace.record(
            self.now,
            TraceEvent::Enable {
                wq: sq,
                until: count,
            },
        );
        self.events
            .schedule(self.now + t, EventKind::WqAdvance { wq: sq });
        Ok(())
    }

    /// Ring a QP's send doorbell: the NIC notices new WQEs after the MMIO
    /// latency.
    pub fn ring_doorbell(&mut self, qp: QpId) -> Result<()> {
        let sq = self.sq_of(qp);
        let node = self.wqs[sq.index()].node;
        let t = self.nics[node.index()].config.t_doorbell;
        self.wqs[sq.index()].stat_doorbells += 1;
        self.trace.record(self.now, TraceEvent::Doorbell { wq: sq });
        self.events
            .schedule(self.now + t, EventKind::WqAdvance { wq: sq });
        Ok(())
    }

    /// Poll up to `max` completions from a CQ.
    pub fn poll_cq(&mut self, cq: CqId, max: usize) -> Vec<Cqe> {
        self.cqs[cq.index()].poll(max)
    }

    /// Allocation-free [`Simulator::poll_cq`]: reap up to `max`
    /// completions into `out` (appending) and return how many arrived.
    /// Clients keep one buffer per reap loop instead of allocating a
    /// fresh `Vec<Cqe>` per poll.
    pub fn poll_cq_into(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> usize {
        self.cqs[cq.index()].poll_into(max, out)
    }

    /// Monotonic completion count of a CQ (the WAIT target value).
    pub fn cq_total(&self, cq: CqId) -> u64 {
        self.cqs[cq.index()].total
    }

    /// Simulated time of the CQ's most recent completion
    /// ([`Time::ZERO`] if it never completed anything). Failure
    /// detectors use this as a heartbeat: a client whose ack CQ has been
    /// silent for longer than its timeout while requests are in flight
    /// declares the primary suspect (§5.6 failover detection).
    pub fn cq_last_completion(&self, cq: CqId) -> Time {
        self.cqs[cq.index()].last_completion
    }

    /// Whether the CQ has ever dropped a pollable entry because it was
    /// full. The monotonic [`cq_total`](Simulator::cq_total) count (and
    /// with it every WAIT threshold) keeps advancing through an overrun —
    /// only host-pollable entries are lost — so a pipelined fleet stalls
    /// visibly on missing completions rather than wedging the NIC; hosts
    /// check this flag to learn that polling undercounted.
    pub fn cq_overrun(&self, cq: CqId) -> bool {
        self.cqs[cq.index()].overrun
    }

    // ------------------------------------------------------------------
    // Host-side scheduling
    // ------------------------------------------------------------------

    /// Schedule `f` to run at absolute simulated time `at`.
    pub fn at(&mut self, at: Time, f: TimerCallback) {
        let key = self.callbacks.insert(f);
        self.events
            .schedule(at.max(self.now), EventKind::Callback { key });
    }

    /// Schedule `f` to run after `delay`.
    pub fn after(&mut self, delay: Time, f: TimerCallback) {
        let at = self.now + delay;
        self.at(at, f);
    }

    /// Register a host thread that observes a CQ. The callback runs once
    /// per completion, after the mode's pickup/wake delay. Returns a key
    /// for [`Simulator::remove_cq_listener`].
    pub fn set_cq_listener(&mut self, cq: CqId, mode: ListenMode, cb: CqCallback) -> u64 {
        let node = self.cqs[cq.index()].node;
        let key = self.listeners.insert(CqListener {
            cq,
            node,
            mode,
            cb: Some(cb),
            scheduled: false,
        });
        self.cqs[cq.index()].listener = Some(key);
        key
    }

    /// Remove a CQ listener.
    pub fn remove_cq_listener(&mut self, key: u64) {
        if let Some(l) = self.listeners.remove(key) {
            self.cqs[l.cq.index()].listener = None;
        }
    }

    /// Spawn a process on a node.
    pub fn spawn_process(
        &mut self,
        node: NodeId,
        name: &str,
        parent: Option<ProcessId>,
    ) -> ProcessId {
        self.hosts[node.index()].spawn(name, parent)
    }

    /// Kill a process: the OS reclaims its memory registrations and frees
    /// its QP rings — any offload chain living in them dies (§5.6).
    pub fn kill_process(&mut self, node: NodeId, pid: ProcessId) -> bool {
        if !self.hosts[node.index()].kill(pid) {
            return false;
        }
        self.mems[node.index()].reclaim_owner(pid);
        for qp in 0..self.qps.len() {
            if self.qps[qp].node == node && self.qp_owner[qp] == pid {
                self.qps[qp].dead = true;
                let (sq, rq) = (self.qps[qp].sq, self.qps[qp].rq);
                self.wqs[sq.index()].block = WqBlock::Dead;
                self.wqs[rq.index()].block = WqBlock::Dead;
            }
        }
        true
    }

    /// Restart a dead process (its previous resources stay dead; the
    /// application must re-create them, which is what costs vanilla
    /// Memcached its 2.25 s in Fig 16).
    pub fn restart_process(&mut self, node: NodeId, pid: ProcessId) -> bool {
        self.hosts[node.index()].restart(pid)
    }

    /// Bring a dead QP back to life — shorthand for "the restarted
    /// application re-created its queue pairs and the client reconnected".
    /// The failure harness uses this after the restart + rebuild delay so
    /// it does not have to model the reconnection handshake.
    pub fn revive_qp(&mut self, qp: QpId) {
        self.qps[qp.index()].dead = false;
        let (sq, rq) = (self.qps[qp.index()].sq, self.qps[qp.index()].rq);
        for wq in [sq, rq] {
            if self.wqs[wq.index()].block == WqBlock::Dead {
                self.wqs[wq.index()].block = WqBlock::None;
            }
        }
        self.events
            .schedule(self.now, EventKind::WqAdvance { wq: sq });
    }

    /// Whether a process is alive.
    pub fn process_alive(&self, node: NodeId, pid: ProcessId) -> bool {
        self.hosts[node.index()].is_alive(pid)
    }

    /// Kernel panic: host-side execution stops; the NIC and memory keep
    /// going, so hull-owned offloads continue serving (§5.6 "OS failure").
    pub fn os_panic(&mut self, node: NodeId) {
        self.hosts[node.index()].os_panic();
    }

    /// Whether a node's OS is up.
    pub fn os_alive(&self, node: NodeId) -> bool {
        self.hosts[node.index()].os_alive
    }

    /// Account `demand` of CPU work on a node; returns the finish time.
    pub fn host_execute(&mut self, node: NodeId, demand: Time, seq: u64) -> Time {
        let now = self.now;
        self.hosts[node.index()].execute(now, demand, seq)
    }

    /// Declare how many host threads are runnable (drives the scheduler-
    /// pressure model behind Fig 15).
    pub fn set_runnable_threads(&mut self, node: NodeId, n: usize) {
        self.hosts[node.index()].runnable_threads = n;
    }

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /// Run until no events remain.
    pub fn run(&mut self) -> Result<()> {
        while let Some(ev) = self.events.pop() {
            if self.events.processed() > self.cfg.max_events {
                return Err(Error::EventBudgetExhausted(self.cfg.max_events));
            }
            self.now = ev.at;
            self.handle(ev.kind)?;
        }
        Ok(())
    }

    /// Run until simulated time `t` (events at exactly `t` included).
    pub fn run_until(&mut self, t: Time) -> Result<()> {
        while let Some(next) = self.events.peek_time() {
            if next > t {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            if self.events.processed() > self.cfg.max_events {
                return Err(Error::EventBudgetExhausted(self.cfg.max_events));
            }
            self.now = ev.at;
            self.handle(ev.kind)?;
        }
        self.now = self.now.max(t);
        Ok(())
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: Time) -> Result<()> {
        let t = self.now + d;
        self.run_until(t)
    }

    /// Process exactly one event. Returns false when none remain.
    /// Synchronous experiment drivers use this to run until a condition
    /// (e.g. a completion) without draining the whole queue.
    pub fn step(&mut self) -> Result<bool> {
        let Some(ev) = self.events.pop() else {
            return Ok(false);
        };
        if self.events.processed() > self.cfg.max_events {
            return Err(Error::EventBudgetExhausted(self.cfg.max_events));
        }
        self.now = ev.at;
        self.handle(ev.kind)?;
        Ok(true)
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Total events dispatched since construction — the engine's hot-path
    /// op count, and the denominator of events/s and allocs-per-event
    /// metrics in the `sim_events` bench.
    pub fn events_processed(&self) -> u64 {
        self.events.processed()
    }

    /// The execution trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clear the trace buffer.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Resource-utilization snapshot for a node's NIC.
    pub fn utilization(&self, node: NodeId) -> NicUtilization {
        let nic = &self.nics[node.index()];
        NicUtilization {
            pu_busy: nic.pus.iter().map(|p| p.busy_total()).sum(),
            fetch_busy: nic.fetch_engine.iter().map(|f| f.busy_total()).sum(),
            atomic_busy: nic.atomic_engine.iter().map(|f| f.busy_total()).sum(),
            link_busy: nic.link_tx.iter().map(|f| f.busy_total()).sum(),
            pcie_busy: nic.pcie_bus.busy_total(),
        }
    }

    /// Total verbs executed by a node's NIC.
    pub fn verbs_executed(&self, node: NodeId) -> u64 {
        self.nics[node.index()].stat_verbs
    }

    /// WQEs executed by one queue (includes recycled re-executions).
    pub fn wq_executed(&self, wq: WqId) -> u64 {
        self.wqs[wq.index()].stat_executed
    }

    /// Doorbells the host has rung on one QP's send queue (MMIO writes:
    /// `ring_doorbell` plus `host_enable`).
    pub fn qp_doorbells(&self, qp: QpId) -> u64 {
        self.wqs[self.sq_of(qp).index()].stat_doorbells
    }

    /// Total doorbells the host has rung across all of a node's queues.
    /// Steady-state zero growth on a server node is the §3.4 claim made
    /// measurable: the NIC re-arms itself, no CPU on the critical path.
    pub fn node_doorbells(&self, node: NodeId) -> u64 {
        self.wqs
            .iter()
            .filter(|wq| wq.node == node)
            .map(|wq| wq.stat_doorbells)
            .sum()
    }

    /// Total WQEs the host has posted across all of a node's queues (send
    /// and receive). Recycled rings re-execute without re-posting, so this
    /// counter going flat while ops complete proves CPU-free serving.
    pub fn node_posts(&self, node: NodeId) -> u64 {
        self.wqs
            .iter()
            .filter(|wq| wq.node == node)
            .map(|wq| wq.posted)
            .sum()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, kind: EventKind) -> Result<()> {
        match kind {
            EventKind::WqAdvance { wq } => self.advance_wq(wq),
            EventKind::FetchDone {
                wq,
                idx,
                managed,
                batch,
            } => self.on_fetch_done(wq, idx, managed, batch),
            EventKind::IssueDone { wq, idx } => self.on_issue_done(wq, idx),
            EventKind::Arrive { qp, msg } => self.on_arrive(qp, msg),
            EventKind::Complete { wq, idx, msg } => self.on_complete(wq, idx, msg),
            EventKind::Callback { key } => {
                if let Some(cb) = self.callbacks.remove(key) {
                    cb(self);
                }
                Ok(())
            }
            EventKind::Notify { key } => self.on_notify(key),
            EventKind::PushCqe { cq, cqe } => {
                self.push_cqe(cq, cqe);
                Ok(())
            }
        }
    }

    /// Drive a send queue: start a fetch and/or issue the next WQE.
    fn advance_wq(&mut self, wq_id: WqId) -> Result<()> {
        self.try_issue(wq_id)?;
        self.try_fetch(wq_id)
    }

    fn try_fetch(&mut self, wq_id: WqId) -> Result<()> {
        let wq = &self.wqs[wq_id.index()];
        if wq.kind != WqKind::Send
            || wq.fetch_inflight
            || wq.block == WqBlock::Dead
            || !wq.can_fetch()
        {
            return Ok(());
        }
        let node = wq.node;
        let port = wq.port;
        let managed = wq.managed;
        if managed {
            // Doorbell order: fetch only when this queue's pipeline is
            // empty, one WQE at a time. The per-port engine pipelines
            // fetches of *independent* queues: each fetch occupies the
            // engine for `t_managed_fetch_slot` and completes after the
            // full `t_managed_fetch` DMA latency, so a lone queue pays the
            // Fig 8 marginal while concurrent queues overlap their DMAs.
            if wq.executing.is_some() || wq.fetched != wq.executed {
                return Ok(());
            }
            let idx = wq.fetched;
            let cfg = &self.nics[node.index()].config;
            let lat = cfg.t_managed_fetch;
            let slot = cfg.t_managed_fetch_slot();
            let slot_done = self.nics[node.index()].fetch_engine[port].acquire(self.now, slot);
            let done = slot_done + (lat - slot);
            self.nics[node.index()].stat_managed_fetches += 1;
            self.wqs[wq_id.index()].fetch_inflight = true;
            self.events.schedule(
                done,
                EventKind::FetchDone {
                    wq: wq_id,
                    idx,
                    managed: true,
                    batch: 1,
                },
            );
        } else {
            // Prefetch a batch; keep at most two batches cached.
            let cfg = &self.nics[node.index()].config;
            if wq.fetch_cache.len() >= cfg.prefetch_batch * 2 {
                return Ok(());
            }
            let idx = wq.fetched;
            let batch = (wq.fetch_limit() - idx).min(cfg.prefetch_batch as u64);
            if batch == 0 {
                return Ok(());
            }
            let lat = cfg.t_fetch_batch;
            let bytes = batch * WQE_SIZE;
            let bus_done = self.nics[node.index()].pcie_occupy(self.now, bytes);
            let done = (self.now + lat).max(bus_done);
            self.wqs[wq_id.index()].fetch_inflight = true;
            self.events.schedule(
                done,
                EventKind::FetchDone {
                    wq: wq_id,
                    idx,
                    managed: false,
                    batch,
                },
            );
        }
        Ok(())
    }

    fn on_fetch_done(&mut self, wq_id: WqId, idx: u64, managed: bool, batch: u64) -> Result<()> {
        // Snapshot the bytes *now* — this is the moment the paper's
        // consistency rules revolve around.
        let (node, dead) = {
            let wq = &self.wqs[wq_id.index()];
            (wq.node, wq.block == WqBlock::Dead)
        };
        self.wqs[wq_id.index()].fetch_inflight = false;
        if dead {
            return Ok(());
        }
        for i in idx..idx + batch {
            let addr = self.wqs[wq_id.index()].slot_addr(i);
            let bytes = match self.mems[node.index()].read(addr, WQE_SIZE) {
                Ok(b) => {
                    let mut arr = [0u8; WQE_SIZE as usize];
                    arr.copy_from_slice(b);
                    arr
                }
                Err(_) => {
                    // Ring memory gone (crashed owner): the queue dies.
                    self.wqs[wq_id.index()].block = WqBlock::Dead;
                    self.trace.record(
                        self.now,
                        TraceEvent::Fault {
                            wq: wq_id,
                            idx: i,
                            reason: "WQ ring unreadable".to_string(),
                        },
                    );
                    return Ok(());
                }
            };
            if self.trace.enabled() {
                let opcode = Wqe::decode(&bytes)
                    .map(|w| w.opcode)
                    .unwrap_or(Opcode::Noop);
                self.trace.record(
                    self.now,
                    TraceEvent::Fetch {
                        wq: wq_id,
                        idx: i,
                        opcode,
                        managed,
                    },
                );
            }
            self.wqs[wq_id.index()].cache_snapshot(i, bytes);
        }
        self.wqs[wq_id.index()].fetched = idx + batch;
        self.advance_wq(wq_id)
    }

    fn try_issue(&mut self, wq_id: WqId) -> Result<()> {
        let wq = &self.wqs[wq_id.index()];
        if wq.kind != WqKind::Send || wq.executing.is_some() {
            return Ok(());
        }
        match wq.block {
            WqBlock::Dead | WqBlock::WaitCq { .. } | WqBlock::WaitPrev => return Ok(()),
            WqBlock::None => {}
        }
        let idx = wq.executed;
        if !wq.has_snapshot(idx) {
            return Ok(());
        }
        let node = wq.node;
        let qp_id = wq.qp;
        let bytes = {
            let wq = &self.wqs[wq_id.index()];
            wq.fetch_cache
                .iter()
                .find(|(i, _)| *i == idx)
                .map(|(_, b)| *b)
                .expect("checked")
        };
        let wqe = match Wqe::decode(&bytes) {
            Ok(w) => w,
            Err(_) => {
                // Corrupted WQE: fault the WQE, keep the queue moving.
                self.wqs[wq_id.index()].take_snapshot(idx);
                self.wqs[wq_id.index()].executed = idx + 1;
                self.trace.record(
                    self.now,
                    TraceEvent::Fault {
                        wq: wq_id,
                        idx,
                        reason: "undecodable WQE".to_string(),
                    },
                );
                let t_cqe = self.nics[node.index()].config.t_cqe;
                let msg =
                    self.stash_local(wq_id, idx, qp_id, Opcode::Noop, true, CqeStatus::BadWqe);
                self.events.schedule(
                    self.now + t_cqe,
                    EventKind::Complete {
                        wq: wq_id,
                        idx,
                        msg,
                    },
                );
                return self.try_issue(wq_id);
            }
        };
        // Completion-ordering fence within the queue.
        if wqe.wait_prev() && self.wqs[wq_id.index()].completed < idx {
            self.wqs[wq_id.index()].block = WqBlock::WaitPrev;
            return Ok(());
        }
        let cfg = self.nics[node.index()].config.clone();
        // Cross-channel support gate (Intel RNICs lack WAIT — §6).
        if wqe.opcode.is_ctrl() && !cfg.supports_wait_enable {
            return self.fault_wqe(wq_id, idx, "WAIT/ENABLE unsupported");
        }
        if wqe.opcode.is_calc() && !cfg.supports_calc {
            return self.fault_wqe(wq_id, idx, "calc verbs unsupported");
        }
        // WAIT: park if the target CQ has not reached the count.
        if wqe.opcode == Opcode::Wait {
            let cq = CqId(wqe.imm_or_target);
            if self.cqs.get(cq.index()).is_none() {
                return self.fault_wqe(wq_id, idx, "WAIT on unknown CQ");
            }
            let count = wqe.operand;
            if self.cqs[cq.index()].total < count {
                self.wqs[wq_id.index()].block = WqBlock::WaitCq { cq, count };
                self.cqs[cq.index()].park(wq_id, count);
                self.trace.record(
                    self.now,
                    TraceEvent::Park {
                        wq: wq_id,
                        cq,
                        count,
                    },
                );
                return Ok(());
            }
        }
        // Issue on the queue's PU.
        let t_issue = if wqe.opcode.is_ctrl() {
            cfg.t_issue_ctrl
        } else {
            cfg.t_issue(wqe.opcode.is_read_class())
        };
        let mut earliest = self.now.max(self.wqs[wq_id.index()].next_issue_at);
        if let Some(rl) = self.wqs[wq_id.index()].rate_limiter.as_mut() {
            earliest = rl.admit(earliest);
        }
        let (port, pu) = {
            let wq = &self.wqs[wq_id.index()];
            (wq.port, wq.pu)
        };
        let (start, finish) = self.nics[node.index()].pus[port].acquire_at(pu, earliest, t_issue);
        {
            let wq = &mut self.wqs[wq_id.index()];
            wq.take_snapshot(idx);
            wq.executing = Some((idx, wqe, start));
            wq.executed = idx + 1;
            wq.next_issue_at = start + cfg.t_chain_gap;
            wq.stat_executed += 1;
        }
        self.nics[node.index()].stat_verbs += 1;
        self.trace.record(
            self.now,
            TraceEvent::Issue {
                wq: wq_id,
                idx,
                opcode: wqe.opcode,
            },
        );
        self.events
            .schedule(finish, EventKind::IssueDone { wq: wq_id, idx });
        Ok(())
    }

    fn fault_wqe(&mut self, wq_id: WqId, idx: u64, reason: &'static str) -> Result<()> {
        let node = self.wqs[wq_id.index()].node;
        let qp = self.wqs[wq_id.index()].qp;
        self.wqs[wq_id.index()].take_snapshot(idx);
        self.wqs[wq_id.index()].executed = idx + 1;
        self.trace.record(
            self.now,
            TraceEvent::Fault {
                wq: wq_id,
                idx,
                reason: reason.to_string(),
            },
        );
        let t_cqe = self.nics[node.index()].config.t_cqe;
        let msg = self.stash_local(
            wq_id,
            idx,
            qp,
            Opcode::Noop,
            true,
            CqeStatus::ProtectionError,
        );
        self.events.schedule(
            self.now + t_cqe,
            EventKind::Complete {
                wq: wq_id,
                idx,
                msg,
            },
        );
        Ok(())
    }

    /// Create an in-flight record for a locally-completing WQE.
    fn stash_local(
        &mut self,
        wq: WqId,
        idx: u64,
        qp: QpId,
        opcode: Opcode,
        signaled: bool,
        status: CqeStatus,
    ) -> u64 {
        self.inflight.insert(InFlight {
            src_wq: wq,
            src_idx: idx,
            src_qp: qp,
            dst_qp: qp,
            opcode,
            signaled,
            payload: Payload::Send { bytes: Vec::new() },
            status,
            result: Vec::new(),
            result_sink: (0, 0),
            result_sgl: false,
            byte_len: 0,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn on_issue_done(&mut self, wq_id: WqId, idx: u64) -> Result<()> {
        let (node, qp_id, port) = {
            let wq = &self.wqs[wq_id.index()];
            (wq.node, wq.qp, wq.port)
        };
        let (exec_idx, wqe, start) = self.wqs[wq_id.index()]
            .executing
            .take()
            .expect("IssueDone without executing WQE");
        debug_assert_eq!(exec_idx, idx);
        let cfg = self.nics[node.index()].config.clone();
        let retire = start + cfg.t_chain_gap;
        let signaled = wqe.signaled();

        match wqe.opcode {
            Opcode::Noop => {
                let msg =
                    self.stash_local(wq_id, idx, qp_id, wqe.opcode, signaled, CqeStatus::Success);
                self.events.schedule(
                    retire + cfg.t_cqe,
                    EventKind::Complete {
                        wq: wq_id,
                        idx,
                        msg,
                    },
                );
            }
            Opcode::Wait => {
                // Threshold was satisfied at issue time.
                let msg =
                    self.stash_local(wq_id, idx, qp_id, wqe.opcode, signaled, CqeStatus::Success);
                self.events.schedule(
                    retire + cfg.t_cqe,
                    EventKind::Complete {
                        wq: wq_id,
                        idx,
                        msg,
                    },
                );
            }
            Opcode::Enable => {
                let target = WqId(wqe.imm_or_target);
                if self.wqs.get(target.index()).is_some() {
                    let until = wqe.operand;
                    {
                        let t = &mut self.wqs[target.index()];
                        t.enabled_until = t.enabled_until.max(until);
                    }
                    self.trace
                        .record(self.now, TraceEvent::Enable { wq: target, until });
                    self.advance_wq(target)?;
                    let msg = self.stash_local(
                        wq_id,
                        idx,
                        qp_id,
                        wqe.opcode,
                        signaled,
                        CqeStatus::Success,
                    );
                    self.events.schedule(
                        retire + cfg.t_cqe,
                        EventKind::Complete {
                            wq: wq_id,
                            idx,
                            msg,
                        },
                    );
                } else {
                    let msg = self.stash_local(
                        wq_id,
                        idx,
                        qp_id,
                        wqe.opcode,
                        true,
                        CqeStatus::ProtectionError,
                    );
                    self.events.schedule(
                        retire + cfg.t_cqe,
                        EventKind::Complete {
                            wq: wq_id,
                            idx,
                            msg,
                        },
                    );
                }
            }
            Opcode::Recv => {
                // A RECV in a send queue decoded fine but is meaningless.
                let msg = self.stash_local(wq_id, idx, qp_id, wqe.opcode, true, CqeStatus::BadWqe);
                self.events.schedule(
                    retire + cfg.t_cqe,
                    EventKind::Complete {
                        wq: wq_id,
                        idx,
                        msg,
                    },
                );
            }
            Opcode::Send | Opcode::Write | Opcode::WriteImm => {
                let Some(peer) = self.qps[qp_id.index()].peer else {
                    return self.complete_error(wq_id, idx, qp_id, wqe, retire + cfg.t_cqe);
                };
                // Gather payload at the initiator, into a recycled buffer.
                let mut bytes = self.buf_pool.take();
                if wqe.length != 0 {
                    if let Err(_e) = self.mems[node.index()].nic_read_into(
                        wqe.lkey,
                        wqe.local_addr,
                        wqe.length as u64,
                        false,
                        &mut bytes,
                    ) {
                        self.buf_pool.put(bytes);
                        return self.complete_error(wq_id, idx, qp_id, wqe, retire + cfg.t_cqe);
                    }
                }
                let nbytes = bytes.len() as u64;
                let payload = match wqe.opcode {
                    Opcode::Send => Payload::Send { bytes },
                    Opcode::Write => Payload::Write {
                        raddr: wqe.remote_addr,
                        rkey: wqe.rkey,
                        bytes,
                        imm: None,
                    },
                    _ => Payload::Write {
                        raddr: wqe.remote_addr,
                        rkey: wqe.rkey,
                        bytes,
                        imm: Some(wqe.imm_or_target),
                    },
                };
                let msg = self.inflight.insert(InFlight {
                    src_wq: wq_id,
                    src_idx: idx,
                    src_qp: qp_id,
                    dst_qp: peer,
                    opcode: wqe.opcode,
                    signaled,
                    payload,
                    status: CqeStatus::Success,
                    result: Vec::new(),
                    result_sink: (0, 0),
                    result_sgl: false,
                    byte_len: nbytes as u32,
                });
                // Initiator PCIe: occupancy + store-and-forward stage.
                let bus_done = self.nics[node.index()].pcie_occupy(retire, nbytes);
                let src_stage = self.nics[node.index()].pcie_stage(nbytes);
                let depart_ready = (retire + cfg.t_posted_extra + src_stage).max(bus_done);
                let peer_node = self.qps[peer.index()].node;
                let arrive = if peer_node == node {
                    depart_ready
                } else {
                    let link_done = self.nics[node.index()].link_occupy(port, depart_ready, nbytes);
                    let wire = self.nics[node.index()].wire_stage(nbytes);
                    let one_way = self.one_way(node, peer_node).expect("connected");
                    (depart_ready + wire).max(link_done) + one_way
                };
                self.events
                    .schedule(arrive, EventKind::Arrive { qp: peer, msg });
            }
            Opcode::Read => {
                let Some(peer) = self.qps[qp_id.index()].peer else {
                    return self.complete_error(wq_id, idx, qp_id, wqe, retire + cfg.t_cqe);
                };
                // A READ may scatter its response across a local SGE table
                // (FLAG_SGL): length then holds the entry count and the
                // request size is the sum of the entries' lengths.
                let read_len = if wqe.is_sgl() {
                    let count = (wqe.length as usize).min(cfg.max_recv_sge);
                    let mut total = 0u32;
                    for i in 0..count {
                        let entry_addr = wqe.local_addr + i as u64 * crate::wqe::SGE_SIZE;
                        match self.mems[node.index()]
                            .read(entry_addr, crate::wqe::SGE_SIZE)
                            .ok()
                            .and_then(|b| crate::wqe::Sge::decode(b).ok())
                        {
                            Some(sge) => total += sge.len,
                            None => break,
                        }
                    }
                    total
                } else {
                    wqe.length
                };
                let msg = self.inflight.insert(InFlight {
                    src_wq: wq_id,
                    src_idx: idx,
                    src_qp: qp_id,
                    dst_qp: peer,
                    opcode: wqe.opcode,
                    signaled,
                    payload: Payload::Read {
                        raddr: wqe.remote_addr,
                        rkey: wqe.rkey,
                        len: read_len,
                    },
                    status: CqeStatus::Success,
                    result: Vec::new(),
                    result_sink: if wqe.is_sgl() {
                        (wqe.local_addr, wqe.length)
                    } else {
                        (wqe.local_addr, wqe.lkey)
                    },
                    result_sgl: wqe.is_sgl(),
                    byte_len: read_len,
                });
                let peer_node = self.qps[peer.index()].node;
                let arrive = if peer_node == node {
                    retire
                } else {
                    retire + self.one_way(node, peer_node).expect("connected")
                };
                self.events
                    .schedule(arrive, EventKind::Arrive { qp: peer, msg });
            }
            Opcode::Cas | Opcode::FetchAdd | Opcode::Max | Opcode::Min => {
                let Some(peer) = self.qps[qp_id.index()].peer else {
                    return self.complete_error(wq_id, idx, qp_id, wqe, retire + cfg.t_cqe);
                };
                let msg = self.inflight.insert(InFlight {
                    src_wq: wq_id,
                    src_idx: idx,
                    src_qp: qp_id,
                    dst_qp: peer,
                    opcode: wqe.opcode,
                    signaled,
                    payload: Payload::Atomic {
                        op: wqe.opcode,
                        raddr: wqe.remote_addr,
                        rkey: wqe.rkey,
                        operand: wqe.operand,
                        swap: wqe.swap,
                    },
                    status: CqeStatus::Success,
                    result: Vec::new(),
                    result_sink: (wqe.local_addr, wqe.lkey),
                    result_sgl: false,
                    byte_len: 8,
                });
                let peer_node = self.qps[peer.index()].node;
                let arrive = if peer_node == node {
                    retire
                } else {
                    retire + self.one_way(node, peer_node).expect("connected")
                };
                self.events
                    .schedule(arrive, EventKind::Arrive { qp: peer, msg });
            }
        }
        // The pipeline may proceed to the next WQE.
        self.advance_wq(wq_id)
    }

    fn complete_error(&mut self, wq: WqId, idx: u64, qp: QpId, wqe: Wqe, at: Time) -> Result<()> {
        self.trace.record(
            self.now,
            TraceEvent::Fault {
                wq,
                idx,
                reason: format!("{:?} failed locally", wqe.opcode),
            },
        );
        let msg = self.stash_local(wq, idx, qp, wqe.opcode, true, CqeStatus::ProtectionError);
        self.events
            .schedule(at, EventKind::Complete { wq, idx, msg });
        self.advance_wq(wq)
    }

    /// Responder-side processing of an arrived request.
    fn on_arrive(&mut self, qp_id: QpId, msg: u64) -> Result<()> {
        let node = self.qps[qp_id.index()].node;
        let src_node = {
            let inf = self.inflight.get(msg).expect("inflight");
            self.qps[inf.src_qp.index()].node
        };
        let one_way = self.one_way(src_node, node).unwrap_or(Time::ZERO);
        let cfg = self.nics[node.index()].config.clone();

        if self.qps[qp_id.index()].dead {
            // Resources are gone: the initiator eventually errors out.
            let inf = self.inflight.get_mut(msg).expect("inflight");
            inf.status = CqeStatus::RnrError;
            let (wq, idx) = (inf.src_wq, inf.src_idx);
            self.events.schedule(
                self.now + DEAD_QP_TIMEOUT,
                EventKind::Complete { wq, idx, msg },
            );
            return Ok(());
        }

        // Move the payload out of the in-flight record instead of cloning
        // it per delivery. A receiver-not-ready park puts it back verbatim,
        // so the RNR retry re-executes exactly as the first attempt did.
        let payload = {
            let inf = self.inflight.get_mut(msg).expect("inflight");
            std::mem::replace(&mut inf.payload, Payload::Send { bytes: Vec::new() })
        };
        match payload {
            Payload::Send { bytes } => {
                if !self.recv_available(qp_id) {
                    self.inflight.get_mut(msg).expect("inflight").payload = Payload::Send { bytes };
                    self.qps[qp_id.index()].rnr_queue.push_back(msg);
                    return Ok(());
                }
                self.consume_recv(qp_id, msg, &bytes, None, one_way, &cfg)?;
                self.buf_pool.put(bytes);
            }
            Payload::Write {
                raddr,
                rkey,
                bytes,
                imm,
            } => {
                // Responder PCIe for the payload.
                let nbytes = bytes.len() as u64;
                self.nics[node.index()].pcie_occupy(self.now, nbytes);
                let status = match self.mems[node.index()].nic_write(rkey, raddr, &bytes, true) {
                    Ok(()) => {
                        self.trace.record(
                            self.now,
                            TraceEvent::MemWrite {
                                addr: raddr,
                                len: nbytes,
                            },
                        );
                        CqeStatus::Success
                    }
                    Err(_) => CqeStatus::ProtectionError,
                };
                self.inflight.get_mut(msg).expect("inflight").status = status;
                if let Some(imm) = imm {
                    if status == CqeStatus::Success {
                        // WRITE_IMM consumes a RECV (no scatter).
                        if !self.recv_available(qp_id) {
                            // The retry rewrites memory with the same
                            // bytes, so the whole payload is restored, not
                            // just the immediate.
                            self.inflight.get_mut(msg).expect("inflight").payload =
                                Payload::Write {
                                    raddr,
                                    rkey,
                                    bytes,
                                    imm: Some(imm),
                                };
                            self.qps[qp_id.index()].rnr_queue.push_back(msg);
                            return Ok(());
                        }
                        self.consume_recv(qp_id, msg, &[], Some(imm), one_way, &cfg)?;
                        self.buf_pool.put(bytes);
                        return Ok(());
                    }
                }
                self.buf_pool.put(bytes);
                let inf = self.inflight.get(msg).expect("inflight");
                let (wq, idx) = (inf.src_wq, inf.src_idx);
                self.events.schedule(
                    self.now + one_way + cfg.t_cqe,
                    EventKind::Complete { wq, idx, msg },
                );
            }
            Payload::Read { raddr, rkey, len } => {
                let mut result = self.buf_pool.take();
                let status = match self.mems[node.index()].nic_read_into(
                    rkey,
                    raddr,
                    len as u64,
                    true,
                    &mut result,
                ) {
                    Ok(()) => CqeStatus::Success,
                    Err(_) => CqeStatus::ProtectionError,
                };
                let nbytes = result.len() as u64;
                {
                    let inf = self.inflight.get_mut(msg).expect("inflight");
                    inf.status = status;
                    inf.result = result;
                }
                // Responder PCIe read (store-and-forward stage, gated by
                // bus occupancy under load) + wire back + the initiator's
                // PCIe write stage.
                let bus_done = self.nics[node.index()].pcie_occupy(self.now, nbytes);
                let data_ready =
                    (self.now + cfg.t_nonposted_extra + self.nics[node.index()].pcie_stage(nbytes))
                        .max(bus_done);
                let port = self.qps[qp_id.index()].port;
                let initiator_stage = self.nics[node.index()].pcie_stage(nbytes);
                let complete_at = if one_way == Time::ZERO {
                    data_ready + initiator_stage + cfg.t_cqe
                } else {
                    let link_done = self.nics[node.index()].link_occupy(port, data_ready, nbytes);
                    let wire = self.nics[node.index()].wire_stage(nbytes);
                    (data_ready + wire).max(link_done) + one_way + initiator_stage + cfg.t_cqe
                };
                let inf = self.inflight.get(msg).expect("inflight");
                let (wq, idx) = (inf.src_wq, inf.src_idx);
                self.events
                    .schedule(complete_at, EventKind::Complete { wq, idx, msg });
            }
            Payload::Atomic {
                op,
                raddr,
                rkey,
                operand,
                swap,
            } => {
                // CAS/ADD serialize through the per-port atomic engine
                // (PCIe atomic transactions — Table 3's 8.4 M/s ceiling);
                // the vendor calc verbs MAX/MIN run on the regular path.
                let port = self.qps[qp_id.index()].port;
                let apply_at = if matches!(op, Opcode::Cas | Opcode::FetchAdd) {
                    self.nics[node.index()].atomic_engine[port]
                        .acquire(self.now, cfg.t_atomic_engine)
                } else {
                    self.now + cfg.t_atomic_engine
                };
                let (status, old) = {
                    // The memory operation conceptually happens at
                    // `apply_at`; between now and then no other event can
                    // observe a half-applied state because the engine is
                    // FIFO and events at intervening times see the old
                    // value only if they fire before this Arrive. We apply
                    // here and timestamp completions at `apply_at` — the
                    // window is the engine occupancy (119 ns) and nothing
                    // else can write this word through the same engine in
                    // between.
                    match self.mems[node.index()].nic_atomic(rkey, raddr, |old| match op {
                        Opcode::Cas => {
                            if old == operand {
                                swap
                            } else {
                                old
                            }
                        }
                        Opcode::FetchAdd => old.wrapping_add(operand),
                        Opcode::Max => old.max(operand),
                        Opcode::Min => old.min(operand),
                        _ => old,
                    }) {
                        Ok(old) => (CqeStatus::Success, old),
                        Err(_) => (CqeStatus::ProtectionError, 0),
                    }
                };
                if status == CqeStatus::Success {
                    self.trace.record(
                        self.now,
                        TraceEvent::MemWrite {
                            addr: raddr,
                            len: 8,
                        },
                    );
                }
                {
                    let mut result = self.buf_pool.take();
                    result.extend_from_slice(&old.to_le_bytes());
                    let inf = self.inflight.get_mut(msg).expect("inflight");
                    inf.status = status;
                    inf.result = result;
                }
                let rest = cfg.t_nonposted_extra.saturating_sub(cfg.t_atomic_engine);
                let inf = self.inflight.get(msg).expect("inflight");
                let (wq, idx) = (inf.src_wq, inf.src_idx);
                self.events.schedule(
                    apply_at + rest + one_way + cfg.t_cqe,
                    EventKind::Complete { wq, idx, msg },
                );
            }
        }
        Ok(())
    }

    /// Scatter `bytes` across an SGE table at `table_addr` with up to
    /// `max_entries` entries (bounded by the NIC's SGE limit). Returns
    /// `(bytes scattered, status)` — shared by RECV consumption and the
    /// SGL READ writeback path.
    fn scatter_local(
        &mut self,
        node: NodeId,
        table_addr: u64,
        max_entries: usize,
        bytes: &[u8],
    ) -> (u32, CqeStatus) {
        let limit = self.nics[node.index()].config.max_recv_sge;
        let count = max_entries.min(limit);
        let mut off = 0usize;
        let mut status = CqeStatus::Success;
        for i in 0..count {
            if off >= bytes.len() {
                break;
            }
            let entry_addr = table_addr + i as u64 * SGE_SIZE;
            let Ok(entry) = self.mems[node.index()].read(entry_addr, SGE_SIZE) else {
                status = CqeStatus::ProtectionError;
                break;
            };
            let Ok(sge) = Sge::decode(entry) else {
                status = CqeStatus::ProtectionError;
                break;
            };
            let take = (sge.len as usize).min(bytes.len() - off);
            if take == 0 {
                continue;
            }
            match self.mems[node.index()].nic_write(
                sge.lkey,
                sge.addr,
                &bytes[off..off + take],
                false,
            ) {
                Ok(()) => {
                    self.trace.record(
                        self.now,
                        TraceEvent::MemWrite {
                            addr: sge.addr,
                            len: take as u64,
                        },
                    );
                    off += take;
                }
                Err(_) => {
                    status = CqeStatus::ProtectionError;
                    break;
                }
            }
        }
        if status == CqeStatus::Success && off < bytes.len() {
            // Message longer than the scatter list.
            status = CqeStatus::ProtectionError;
        }
        (off as u32, status)
    }

    /// Whether the responder QP has a RECV ready to consume right now.
    /// Cyclic rings re-arm consumed slots as they wrap (§3.4's recycling
    /// applied to the RQ): a fully posted cyclic ring never runs dry.
    fn recv_available(&self, qp_id: QpId) -> bool {
        let rq = &self.wqs[self.qps[qp_id.index()].rq.index()];
        rq.cyclic || rq.posted > self.qps[qp_id.index()].recv_consumed
    }

    /// Consume one RECV for an arriving SEND/WRITE_IMM: scatter the
    /// payload (reading the RECV WQE bytes *now* — they may have been
    /// patched by earlier verbs) and generate the receive completion.
    /// Callers check [`Simulator::recv_available`] first and park on the
    /// RNR queue themselves when it fails.
    fn consume_recv(
        &mut self,
        qp_id: QpId,
        msg: u64,
        bytes: &[u8],
        imm: Option<u32>,
        one_way: Time,
        cfg: &NicConfig,
    ) -> Result<()> {
        debug_assert!(self.recv_available(qp_id));
        let node = self.qps[qp_id.index()].node;
        let rq_id = self.qps[qp_id.index()].rq;
        let recv_idx = self.qps[qp_id.index()].recv_consumed;
        self.qps[qp_id.index()].recv_consumed = recv_idx + 1;
        self.wqs[rq_id.index()].executed = recv_idx + 1;
        self.wqs[rq_id.index()].stat_executed += 1;

        // Decode the RECV WQE from host memory at consume time.
        let slot = self.wqs[rq_id.index()].slot_addr(recv_idx);
        let nbytes = bytes.len() as u64;
        self.nics[node.index()].pcie_occupy(self.now, nbytes);
        let mut raw = [0u8; WQE_SIZE as usize];
        raw.copy_from_slice(self.mems[node.index()].read(slot, WQE_SIZE)?);
        let mut status = CqeStatus::Success;
        let mut scattered = 0u32;
        match Wqe::decode(&raw) {
            Ok(recv_wqe) if recv_wqe.opcode == Opcode::Recv => {
                if recv_wqe.is_sgl() {
                    // Scatter across the SGE table.
                    let (n, st) = self.scatter_local(
                        node,
                        recv_wqe.local_addr,
                        recv_wqe.length as usize,
                        bytes,
                    );
                    scattered = n;
                    status = st;
                } else if nbytes > 0 {
                    if nbytes > recv_wqe.length as u64 {
                        status = CqeStatus::ProtectionError;
                    } else {
                        match self.mems[node.index()].nic_write(
                            recv_wqe.lkey,
                            recv_wqe.local_addr,
                            bytes,
                            false,
                        ) {
                            Ok(()) => {
                                self.trace.record(
                                    self.now,
                                    TraceEvent::MemWrite {
                                        addr: recv_wqe.local_addr,
                                        len: nbytes,
                                    },
                                );
                                scattered = nbytes as u32;
                            }
                            Err(_) => status = CqeStatus::ProtectionError,
                        }
                    }
                }
            }
            _ => status = CqeStatus::BadWqe,
        }

        // Receive completion (this is what WAIT-triggered chains key on).
        let cqe = Cqe {
            wq: rq_id,
            qp: qp_id,
            wqe_index: recv_idx,
            opcode: Opcode::Recv,
            status,
            byte_len: if imm.is_some() {
                self.inflight.get(msg).expect("inflight").byte_len
            } else {
                scattered
            },
            imm,
            time: self.now + cfg.t_cqe,
        };
        let recv_cq = self.qps[qp_id.index()].recv_cq;
        let t_cqe = cfg.t_cqe;
        self.after_cqe(recv_cq, cqe, t_cqe);

        // Ack back to the initiator.
        {
            let inf = self.inflight.get_mut(msg).expect("inflight");
            if status != CqeStatus::Success {
                inf.status = status;
            }
        }
        let inf = self.inflight.get(msg).expect("inflight");
        let (wq, idx) = (inf.src_wq, inf.src_idx);
        self.events.schedule(
            self.now + one_way + t_cqe,
            EventKind::Complete { wq, idx, msg },
        );
        Ok(())
    }

    /// Schedule a CQE push `delay` after now (keeps WAIT wake-ups at the
    /// correct simulated time). `Cqe` is `Copy`, so this rides a plain
    /// event instead of a boxed one-shot closure.
    fn after_cqe(&mut self, cq: CqId, cqe: Cqe, delay: Time) {
        self.events
            .schedule(self.now + delay, EventKind::PushCqe { cq, cqe });
    }

    /// Push a CQE: wake WAIT-parked queues and notify host listeners.
    fn push_cqe(&mut self, cq: CqId, mut cqe: Cqe) {
        cqe.time = self.now;
        let mut woken = std::mem::take(&mut self.woken_buf);
        woken.clear();
        self.cqs[cq.index()].push_into(cqe, &mut woken);
        self.trace.record(
            self.now,
            TraceEvent::Cqe {
                cq,
                wq: cqe.wq,
                idx: cqe.wqe_index,
            },
        );
        for &wq in &woken {
            if self.wqs[wq.index()].block != WqBlock::Dead {
                self.wqs[wq.index()].block = WqBlock::None;
                let _ = self.advance_wq(wq);
            }
        }
        self.woken_buf = woken;
        // Host listener notification.
        if let Some(key) = self.cqs[cq.index()].listener {
            let (node, mode, scheduled) = {
                let l = self.listeners.get(key).expect("listener");
                (l.node, l.mode, l.scheduled)
            };
            if !scheduled && self.hosts[node.index()].os_alive {
                let delay = match mode {
                    ListenMode::Polling => self.hosts[node.index()].config.t_poll_pickup,
                    ListenMode::Event => self.hosts[node.index()].config.t_event_wake,
                };
                self.listeners.get_mut(key).expect("listener").scheduled = true;
                self.events
                    .schedule(self.now + delay, EventKind::Notify { key });
            }
        }
    }

    fn on_notify(&mut self, key: u64) -> Result<()> {
        let Some(l) = self.listeners.get_mut(key) else {
            return Ok(());
        };
        l.scheduled = false;
        let (cq, node) = (l.cq, l.node);
        if !self.hosts[node.index()].os_alive {
            return Ok(());
        }
        let mut cb = match self.listeners.get_mut(key).and_then(|l| l.cb.take()) {
            Some(cb) => cb,
            None => return Ok(()),
        };
        let mut batch = std::mem::take(&mut self.notify_buf);
        loop {
            batch.clear();
            if self.cqs[cq.index()].poll_into(64, &mut batch) == 0 {
                break;
            }
            for &cqe in &batch {
                cb(self, cqe);
            }
        }
        batch.clear();
        self.notify_buf = batch;
        // The listener may have been removed by its own callback.
        if let Some(l) = self.listeners.get_mut(key) {
            l.cb = Some(cb);
        }
        Ok(())
    }

    /// Initiator-side completion bookkeeping.
    fn on_complete(&mut self, wq_id: WqId, idx: u64, msg: u64) -> Result<()> {
        let inf = self.inflight.remove(msg).expect("inflight");
        let node = self.wqs[wq_id.index()].node;
        // Writebacks: READ data / atomic old value.
        let mut status = inf.status;
        if status == CqeStatus::Success && !inf.result.is_empty() && inf.result_sink.0 != 0 {
            if inf.result_sgl {
                // Scatter the READ response across the local SGE table.
                let (table, count) = inf.result_sink;
                let (_, st) = self.scatter_local(node, table, count as usize, &inf.result);
                status = st;
            } else {
                let (addr, lkey) = inf.result_sink;
                match self.mems[node.index()].nic_write(lkey, addr, &inf.result, false) {
                    Ok(()) => {
                        self.trace.record(
                            self.now,
                            TraceEvent::MemWrite {
                                addr,
                                len: inf.result.len() as u64,
                            },
                        );
                    }
                    Err(_) => status = CqeStatus::ProtectionError,
                }
            }
        }
        {
            let wq = &mut self.wqs[wq_id.index()];
            wq.completed += 1;
            if wq.block == WqBlock::WaitPrev {
                wq.block = WqBlock::None;
            }
        }
        if inf.signaled || status != CqeStatus::Success {
            let cqe = Cqe {
                wq: wq_id,
                qp: inf.src_qp,
                wqe_index: idx,
                opcode: inf.opcode,
                status,
                byte_len: inf.byte_len,
                imm: None,
                time: self.now,
            };
            let cq = self.qps[inf.src_qp.index()].send_cq;
            self.push_cqe(cq, cqe);
        }
        // Recycle the message's byte buffers for the next in-flight op.
        match inf.payload {
            Payload::Send { bytes } | Payload::Write { bytes, .. } => self.buf_pool.put(bytes),
            Payload::Read { .. } | Payload::Atomic { .. } => {}
        }
        self.buf_pool.put(inf.result);
        self.advance_wq(wq_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HostConfig, LinkConfig, NicConfig, SimConfig};

    /// Two connected nodes with default CX5 NICs.
    fn two_nodes() -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(SimConfig::default());
        let a = sim.add_node("a", HostConfig::default(), NicConfig::connectx5());
        let b = sim.add_node("b", HostConfig::default(), NicConfig::connectx5());
        sim.connect_nodes(a, b, LinkConfig::back_to_back());
        (sim, a, b)
    }

    /// A connected QP pair a→b with per-node CQs. Returns (qp_a, qp_b).
    fn qp_pair(sim: &mut Simulator, a: NodeId, b: NodeId) -> (QpId, QpId, CqId, CqId) {
        let cq_a = sim.create_cq(a, 64).unwrap();
        let cq_b = sim.create_cq(b, 64).unwrap();
        let qp_a = sim.create_qp(a, QpConfig::new(cq_a)).unwrap();
        let qp_b = sim.create_qp(b, QpConfig::new(cq_b)).unwrap();
        sim.connect_qps(qp_a, qp_b).unwrap();
        (qp_a, qp_b, cq_a, cq_b)
    }

    #[test]
    fn remote_write_moves_bytes_and_completes() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 64, 8).unwrap();
        let smr = sim.register_mr(a, src, 64, Access::all()).unwrap();
        let dst = sim.alloc(b, 64, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 64, Access::all()).unwrap();
        sim.mem_write_u64(a, src, 0x1122_3344_5566_7788).unwrap();

        sim.post_send(
            qp_a,
            WorkRequest::write(src, smr.lkey, 8, dst, dmr.rkey).signaled(),
        )
        .unwrap();
        sim.run().unwrap();

        assert_eq!(sim.mem_read_u64(b, dst).unwrap(), 0x1122_3344_5566_7788);
        let cqes = sim.poll_cq(cq_a, 8);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::Success);
        assert_eq!(cqes[0].opcode, Opcode::Write);
        // Fig 7 calibration: remote 64 B WRITE ≈ 1.6 us.
        let t = cqes[0].time.as_us_f64();
        assert!((t - 1.6).abs() < 0.05, "WRITE latency {t}");
    }

    #[test]
    fn remote_read_fetches_bytes() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
        let dst = sim.alloc(a, 64, 8).unwrap();
        let dmr = sim.register_mr(a, dst, 64, Access::all()).unwrap();
        let src = sim.alloc(b, 64, 8).unwrap();
        let smr = sim.register_mr(b, src, 64, Access::all()).unwrap();
        sim.mem_write_u64(b, src, 0xABCD).unwrap();

        sim.post_send(
            qp_a,
            WorkRequest::read(dst, dmr.lkey, 8, src, smr.rkey).signaled(),
        )
        .unwrap();
        sim.run().unwrap();

        assert_eq!(sim.mem_read_u64(a, dst).unwrap(), 0xABCD);
        let cqes = sim.poll_cq(cq_a, 8);
        assert_eq!(cqes.len(), 1);
        // Fig 7: remote 64 B READ ≈ 1.8 us.
        let t = cqes[0].time.as_us_f64();
        assert!((t - 1.8).abs() < 0.05, "READ latency {t}");
    }

    #[test]
    fn cq_overrun_is_observable_and_wait_counting_survives_it() {
        // A pipelined fleet drives far more completions than a host may
        // poll; when a CQ fills, pollable entries drop (observably — the
        // overrun flag) but the monotonic count that WAIT thresholds use
        // keeps advancing, so chains parked past the overrun still fire.
        let (mut sim, a, b) = two_nodes();
        let small = sim.create_cq(a, 2).unwrap();
        let qp1 = sim.create_qp(a, QpConfig::new(small)).unwrap();
        let qp2 = sim.create_qp(a, QpConfig::new(small)).unwrap();
        let peer1 = {
            let cq_b = sim.create_cq(b, 64).unwrap();
            sim.create_qp(b, QpConfig::new(cq_b)).unwrap()
        };
        let peer2 = {
            let cq_b = sim.create_cq(b, 64).unwrap();
            sim.create_qp(b, QpConfig::new(cq_b)).unwrap()
        };
        sim.connect_qps(qp1, peer1).unwrap();
        sim.connect_qps(qp2, peer2).unwrap();
        let src = sim.alloc(a, 64, 8).unwrap();
        let smr = sim.register_mr(a, src, 64, Access::all()).unwrap();
        let dst = sim.alloc(b, 64, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 64, Access::all()).unwrap();

        // Six signaled writes through a depth-2 CQ: four entries drop.
        for _ in 0..6 {
            sim.post_send(
                qp1,
                WorkRequest::write(src, smr.lkey, 8, dst, dmr.rkey).signaled(),
            )
            .unwrap();
        }
        sim.run().unwrap();
        assert!(sim.cq_overrun(small), "overrun must be observable");
        assert_eq!(sim.cq_total(small), 6, "monotonic count keeps advancing");
        assert_eq!(sim.poll_cq(small, 16).len(), 2, "only depth entries poll");

        // A WAIT parked beyond the overrun still releases: threshold 8
        // needs two more completions, which arrive via the second QP.
        sim.mem_write_u64(b, dst + 8, 0).unwrap();
        sim.post_send(qp1, WorkRequest::wait(small, 8)).unwrap();
        sim.post_send(qp1, WorkRequest::write(src, smr.lkey, 8, dst + 8, dmr.rkey))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(
            sim.mem_read_u64(b, dst + 8).unwrap(),
            0,
            "flag write must stay parked behind the WAIT"
        );
        for _ in 0..2 {
            sim.post_send(
                qp2,
                WorkRequest::write(src, smr.lkey, 8, dst, dmr.rkey).signaled(),
            )
            .unwrap();
        }
        sim.mem_write_u64(a, src, 0x5EED).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.cq_total(small), 8);
        assert_eq!(
            sim.mem_read_u64(b, dst + 8).unwrap(),
            0x5EED,
            "WAIT threshold crossed the overrun and released the chain"
        );
    }

    #[test]
    fn recycled_ring_wait_counting_survives_cq_overrun() {
        // The recycled-path extension of the overrun test above: a §3.4
        // self-recycling ring whose WAIT thresholds are FETCH_ADD-bumped
        // every round keeps cycling even after its (tiny, never-polled)
        // CQ overruns — absolute thresholds ride the monotonic count, so
        // dropped pollable entries cost nothing.
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 2).unwrap();
        let mqp = sim
            .create_qp(n, QpConfig::new(cq).managed().sq_depth(4))
            .unwrap();
        let peer = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(mqp, peer).unwrap();
        let ring = sim.register_sq_ring(mqp, crate::ids::ProcessId(0)).unwrap();
        let ctr = sim.alloc(n, 8, 8).unwrap();
        let cmr = sim.register_mr(n, ctr, 8, Access::all()).unwrap();
        let msq = sim.sq_of(mqp);

        // Ring: two head FADDs bump the tail WAIT (+2 signaled per
        // round) and the self-ENABLE (+4 slots per round), both
        // initialized one delta low.
        let wait_op = sim.sq_wqe_addr(mqp, 2) + 48; // operand offset
        let enable_op = sim.sq_wqe_addr(mqp, 3) + 48;
        sim.post_send_quiet(
            mqp,
            WorkRequest::fetch_add(ctr, cmr.rkey, 1, 0, 0).signaled(),
        )
        .unwrap();
        sim.post_send_quiet(
            mqp,
            WorkRequest::fetch_add(wait_op, ring.rkey, 2, 0, 0).signaled(),
        )
        .unwrap();
        sim.post_send_quiet(mqp, WorkRequest::wait(cq, 0)).unwrap();
        sim.post_send_quiet(mqp, WorkRequest::enable(msq, 4))
            .unwrap();
        // Head FADD for the enable threshold rides the counter FADD's
        // slot? No — patch it via a second bump from the host once; the
        // ring's own FADD (slot 1) covers the WAIT. Rewrite slot 0 to
        // bump the ENABLE as well would lose the counter, so bump the
        // enable from slot 0's completion path instead: replace slot 0
        // with a FADD on the enable operand and count rounds via the
        // WAIT-bump word.
        sim.rewrite_sq_wqe(
            mqp,
            0,
            WorkRequest::fetch_add(enable_op, ring.rkey, 4, 0, 0).signaled(),
        )
        .unwrap();
        sim.host_enable(mqp, 4).unwrap();
        sim.run_until(Time::from_us(120)).unwrap();

        assert!(sim.cq_overrun(cq), "the 2-deep CQ must overrun");
        let rounds = sim.wq_executed(msq) / 4;
        assert!(rounds >= 5, "ring kept cycling past the overrun: {rounds}");
        // The WAIT threshold advanced monotonically (+2 per round) and
        // never exceeded the monotonic completion count by more than one
        // round's delta.
        let wait_thresh = sim.mem_read_u64(n, wait_op).unwrap();
        assert!(
            wait_thresh == 2 * rounds || wait_thresh == 2 * (rounds + 1),
            "threshold {wait_thresh} advances by exactly 2 per round ({rounds} rounds)"
        );
        assert!(sim.cq_total(cq) >= wait_thresh.saturating_sub(2));
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
        let tgt = sim.alloc(b, 8, 8).unwrap();
        let tmr = sim.register_mr(b, tgt, 8, Access::all()).unwrap();
        sim.mem_write_u64(b, tgt, 5).unwrap();

        // Mismatch: no change.
        sim.post_send(
            qp_a,
            WorkRequest::cas(tgt, tmr.rkey, 4, 99, 0, 0).signaled(),
        )
        .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, tgt).unwrap(), 5);

        // Match: swapped.
        sim.post_send(
            qp_a,
            WorkRequest::cas(tgt, tmr.rkey, 5, 99, 0, 0).signaled(),
        )
        .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, tgt).unwrap(), 99);
        assert_eq!(sim.poll_cq(cq_a, 8).len(), 2);
    }

    #[test]
    fn fetch_add_and_calc_verbs() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, _cq_a, _) = qp_pair(&mut sim, a, b);
        let tgt = sim.alloc(b, 8, 8).unwrap();
        let tmr = sim.register_mr(b, tgt, 8, Access::all()).unwrap();
        sim.mem_write_u64(b, tgt, 10).unwrap();

        sim.post_send(qp_a, WorkRequest::fetch_add(tgt, tmr.rkey, 7, 0, 0))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, tgt).unwrap(), 17);

        sim.post_send(qp_a, WorkRequest::max(tgt, tmr.rkey, 100))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, tgt).unwrap(), 100);

        sim.post_send(qp_a, WorkRequest::min(tgt, tmr.rkey, 3))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, tgt).unwrap(), 3);
    }

    #[test]
    fn send_recv_delivers_payload_and_completions() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, qp_b, cq_a, cq_b) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 64, 8).unwrap();
        let smr = sim.register_mr(a, src, 64, Access::all()).unwrap();
        let dst = sim.alloc(b, 64, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 64, Access::all()).unwrap();
        sim.mem_write(a, src, b"hello rdma!").unwrap();

        sim.post_recv(qp_b, WorkRequest::recv(dst, dmr.lkey, 64))
            .unwrap();
        sim.post_send(qp_a, WorkRequest::send(src, smr.lkey, 11).signaled())
            .unwrap();
        sim.run().unwrap();

        assert_eq!(&sim.mem_read(b, dst, 11).unwrap(), b"hello rdma!");
        let rx = sim.poll_cq(cq_b, 8);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].opcode, Opcode::Recv);
        assert_eq!(rx[0].byte_len, 11);
        assert_eq!(sim.poll_cq(cq_a, 8).len(), 1);
    }

    #[test]
    fn send_without_recv_parks_until_recv_posted() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, qp_b, _cq_a, cq_b) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();
        let dst = sim.alloc(b, 8, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 8, Access::all()).unwrap();
        sim.mem_write_u64(a, src, 42).unwrap();

        sim.post_send(qp_a, WorkRequest::send(src, smr.lkey, 8))
            .unwrap();
        sim.run().unwrap();
        // Nothing delivered yet.
        assert_eq!(sim.mem_read_u64(b, dst).unwrap(), 0);

        sim.post_recv(qp_b, WorkRequest::recv(dst, dmr.lkey, 8))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, dst).unwrap(), 42);
        assert_eq!(sim.poll_cq(cq_b, 8).len(), 1);
    }

    #[test]
    fn write_imm_consumes_recv_and_delivers_imm() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, qp_b, _cq_a, cq_b) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();
        let dst = sim.alloc(b, 8, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 8, Access::all()).unwrap();
        sim.mem_write_u64(a, src, 7).unwrap();

        sim.post_recv(qp_b, WorkRequest::recv(0, 0, 0)).unwrap();
        sim.post_send(
            qp_a,
            WorkRequest::write_imm(src, smr.lkey, 8, dst, dmr.rkey, 0xFEED),
        )
        .unwrap();
        sim.run().unwrap();

        assert_eq!(sim.mem_read_u64(b, dst).unwrap(), 7);
        let rx = sim.poll_cq(cq_b, 8);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].imm, Some(0xFEED));
    }

    #[test]
    fn key_violation_produces_error_cqe() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();
        let dst = sim.alloc(b, 8, 8).unwrap();
        // Deliberately wrong rkey.
        sim.post_send(qp_a, WorkRequest::write(src, smr.lkey, 8, dst, 0xBAD))
            .unwrap();
        sim.run().unwrap();
        let cqes = sim.poll_cq(cq_a, 8);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::ProtectionError);
        assert_eq!(sim.mem_read_u64(b, dst).unwrap(), 0);
    }

    #[test]
    fn loopback_qps_work_on_one_node() {
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 16).unwrap();
        let qp1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let qp2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(qp1, qp2).unwrap();
        let buf = sim.alloc(n, 16, 8).unwrap();
        let mr = sim.register_mr(n, buf, 16, Access::all()).unwrap();
        sim.mem_write_u64(n, buf, 0x77).unwrap();

        sim.post_send(
            qp1,
            WorkRequest::write(buf, mr.lkey, 8, buf + 8, mr.rkey).signaled(),
        )
        .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(n, buf + 8).unwrap(), 0x77);
        // Loopback is faster than remote (no wire RTT).
        let cqes = sim.poll_cq(cq, 4);
        assert!(cqes[0].time.as_us_f64() < 1.6);
    }

    #[test]
    fn wait_enable_cross_channel_trigger() {
        // A chain parked on WAIT(recv_cq, 1) runs only after a SEND lands:
        // the paper's Fig 3 trigger pattern.
        let (mut sim, a, b) = two_nodes();
        let client_cq = sim.create_cq(a, 16).unwrap();
        let qp_client = sim.create_qp(a, QpConfig::new(client_cq)).unwrap();
        let recv_cq = sim.create_cq(b, 16).unwrap();
        let chain_cq = sim.create_cq(b, 16).unwrap();
        let qp_server = sim
            .create_qp(b, QpConfig::new(chain_cq).recv_cq(recv_cq))
            .unwrap();
        sim.connect_qps(qp_client, qp_server).unwrap();

        // Loopback pair on the server for the chain's WRITE.
        let lb_cq = sim.create_cq(b, 16).unwrap();
        let lb1 = sim.create_qp(b, QpConfig::new(lb_cq)).unwrap();
        let lb2 = sim.create_qp(b, QpConfig::new(lb_cq)).unwrap();
        sim.connect_qps(lb1, lb2).unwrap();

        let flag = sim.alloc(b, 8, 8).unwrap();
        let fmr = sim.register_mr(b, flag, 8, Access::all()).unwrap();
        let one = sim.alloc(b, 8, 8).unwrap();
        let omr = sim.register_mr(b, one, 8, Access::all()).unwrap();
        sim.mem_write_u64(b, one, 1).unwrap();

        // Server chain: WAIT for one receive completion, then WRITE 1 to
        // flag (loopback).
        sim.post_recv(qp_server, WorkRequest::recv(0, 0, 0))
            .unwrap();
        sim.post_send_batch(
            lb1,
            &[
                WorkRequest::wait(recv_cq, 1),
                WorkRequest::write(one, omr.lkey, 8, flag, fmr.rkey),
            ],
        )
        .unwrap();
        sim.run().unwrap();
        // Chain is parked; flag untouched.
        assert_eq!(sim.mem_read_u64(b, flag).unwrap(), 0);

        // Client trigger.
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();
        sim.post_send(qp_client, WorkRequest::send(src, smr.lkey, 8))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(b, flag).unwrap(), 1);
    }

    #[test]
    fn managed_queue_is_gated_by_enable() {
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 16).unwrap();
        let mqp1 = sim.create_qp(n, QpConfig::new(cq).managed()).unwrap();
        let mqp2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(mqp1, mqp2).unwrap();
        let buf = sim.alloc(n, 16, 8).unwrap();
        let mr = sim.register_mr(n, buf, 16, Access::all()).unwrap();
        sim.mem_write_u64(n, buf, 0xAA).unwrap();

        // Post to the managed queue: nothing runs (no doorbell, no enable).
        sim.post_send_quiet(mqp1, WorkRequest::write(buf, mr.lkey, 8, buf + 8, mr.rkey))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(n, buf + 8).unwrap(), 0);

        // ENABLE from another queue releases it.
        let ctrl1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let ctrl2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(ctrl1, ctrl2).unwrap();
        let msq = sim.sq_of(mqp1);
        sim.post_send(ctrl1, WorkRequest::enable(msq, 1)).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(n, buf + 8).unwrap(), 0xAA);
    }

    #[test]
    fn self_modification_changes_what_executes() {
        // Post a NOOP into a managed queue, patch its header in host
        // memory into a WRITE before enabling it — the NIC must execute
        // the WRITE (Fig 4's transmutation, done by the host for
        // simplicity here; redn-core does it with CAS verbs).
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 16).unwrap();
        let mqp = sim.create_qp(n, QpConfig::new(cq).managed()).unwrap();
        let peer = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(mqp, peer).unwrap();
        let buf = sim.alloc(n, 16, 8).unwrap();
        let mr = sim.register_mr(n, buf, 16, Access::all()).unwrap();
        sim.mem_write_u64(n, buf, 0xBEEF).unwrap();

        // The NOOP carries the WRITE's operands already (paper's trick).
        let mut wr = WorkRequest::write(buf, mr.lkey, 8, buf + 8, mr.rkey);
        wr.wqe.opcode = Opcode::Noop;
        sim.post_send_quiet(mqp, wr).unwrap();

        // Patch opcode NOOP -> WRITE directly in the ring.
        let slot = sim.sq_wqe_addr(mqp, 0);
        let word = sim.mem_read_u64(n, slot).unwrap();
        let (_, id) = crate::wqe::split_header(word);
        sim.mem_write_u64(n, slot, crate::wqe::header_word(Opcode::Write, id))
            .unwrap();

        // Enable and run: the patched WRITE executes.
        let ctrl1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let ctrl2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(ctrl1, ctrl2).unwrap();
        let msq = sim.sq_of(mqp);
        sim.post_send(ctrl1, WorkRequest::enable(msq, 1)).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(n, buf + 8).unwrap(), 0xBEEF);
    }

    #[test]
    fn prefetch_hazard_unmanaged_queue_executes_stale_wqe() {
        // The §3.1 consistency hazard: on an UNMANAGED queue the NIC may
        // prefetch WQEs; a later in-memory patch is lost.
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 16).unwrap();
        let qp1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let qp2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(qp1, qp2).unwrap();
        let buf = sim.alloc(n, 16, 8).unwrap();
        let mr = sim.register_mr(n, buf, 16, Access::all()).unwrap();
        sim.mem_write_u64(n, buf, 0x1).unwrap();

        let mut wr = WorkRequest::write(buf, mr.lkey, 8, buf + 8, mr.rkey);
        wr.wqe.opcode = Opcode::Noop;
        // Post both WQEs with one doorbell: they are prefetched together.
        sim.post_send_batch(qp1, &[WorkRequest::noop(), wr])
            .unwrap();
        // Let the doorbell + prefetch happen.
        sim.run_until(Time::from_us_f64(1.1)).unwrap();
        // Patch WQE 1 after the prefetch: NOOP -> WRITE.
        let slot = sim.sq_wqe_addr(qp1, 1);
        let word = sim.mem_read_u64(n, slot).unwrap();
        let (_, id) = crate::wqe::split_header(word);
        sim.mem_write_u64(n, slot, crate::wqe::header_word(Opcode::Write, id))
            .unwrap();
        sim.run().unwrap();
        // The stale NOOP executed: memory unchanged.
        assert_eq!(sim.mem_read_u64(n, buf + 8).unwrap(), 0);
    }

    #[test]
    fn recv_sgl_scatters_into_multiple_targets() {
        use crate::wqe::Sge;
        let (mut sim, a, b) = two_nodes();
        let (qp_a, qp_b, _cq_a, cq_b) = qp_pair(&mut sim, a, b);
        let src = sim.alloc(a, 16, 8).unwrap();
        let smr = sim.register_mr(a, src, 16, Access::all()).unwrap();
        sim.mem_write_u64(a, src, 0x1111).unwrap();
        sim.mem_write_u64(a, src + 8, 0x2222).unwrap();

        // Two scatter targets on b, plus the SGE table itself.
        let t1 = sim.alloc(b, 8, 8).unwrap();
        let t2 = sim.alloc(b, 8, 8).unwrap();
        let mrb = sim.register_mr(b, t1, 16, Access::all()).unwrap();
        let table = sim.alloc(b, 32, 8).unwrap();
        let e0 = Sge {
            addr: t1,
            lkey: mrb.lkey,
            len: 8,
        };
        let e1 = Sge {
            addr: t2,
            lkey: mrb.lkey,
            len: 8,
        };
        sim.mem_write(b, table, &e0.encode()).unwrap();
        sim.mem_write(b, table + 16, &e1.encode()).unwrap();

        sim.post_recv(qp_b, WorkRequest::recv_sgl(table, 2))
            .unwrap();
        sim.post_send(qp_a, WorkRequest::send(src, smr.lkey, 16))
            .unwrap();
        sim.run().unwrap();

        assert_eq!(sim.mem_read_u64(b, t1).unwrap(), 0x1111);
        assert_eq!(sim.mem_read_u64(b, t2).unwrap(), 0x2222);
        assert_eq!(sim.poll_cq(cq_b, 4)[0].byte_len, 16);
    }

    #[test]
    fn wq_recycling_re_executes_the_ring() {
        // ENABLE past the posted tail wraps the ring: the same WQE
        // re-executes (§3.4). Three enables -> three executions of the
        // single posted WRITE, incrementing via FETCH_ADD would be
        // clearer but WRITE shows the re-execution too.
        let mut sim = Simulator::new(SimConfig::default());
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 64).unwrap();
        let mqp = sim
            .create_qp(n, QpConfig::new(cq).managed().sq_depth(1))
            .unwrap();
        let peer = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(mqp, peer).unwrap();
        let ctr = sim.alloc(n, 8, 8).unwrap();
        let cmr = sim.register_mr(n, ctr, 8, Access::all()).unwrap();

        sim.post_send_quiet(mqp, WorkRequest::fetch_add(ctr, cmr.rkey, 1, 0, 0))
            .unwrap();
        let ctrl1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let ctrl2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(ctrl1, ctrl2).unwrap();
        let msq = sim.sq_of(mqp);
        // Enable three executions of a 1-deep ring.
        sim.post_send(ctrl1, WorkRequest::enable(msq, 3)).unwrap();
        sim.run().unwrap();
        assert_eq!(sim.mem_read_u64(n, ctr).unwrap(), 3);
        assert_eq!(sim.wq_executed(msq), 3);
    }

    #[test]
    fn dead_qp_freezes_and_errors() {
        let (mut sim, a, b) = two_nodes();
        let cq_a = sim.create_cq(a, 16).unwrap();
        let cq_b = sim.create_cq(b, 16).unwrap();
        let qp_a = sim.create_qp(a, QpConfig::new(cq_a)).unwrap();
        let pid = sim.spawn_process(b, "victim", None);
        let qp_b = sim.create_qp_owned(b, QpConfig::new(cq_b), pid).unwrap();
        sim.connect_qps(qp_a, qp_b).unwrap();
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();

        sim.kill_process(b, pid);
        sim.post_send(qp_a, WorkRequest::send(src, smr.lkey, 8).signaled())
            .unwrap();
        sim.run().unwrap();
        let cqes = sim.poll_cq(cq_a, 4);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].status, CqeStatus::RnrError);
        // Posting on the dead QP fails outright.
        assert!(sim.post_send(qp_b, WorkRequest::noop()).is_err());
    }

    #[test]
    fn cq_listener_polling_sees_completions() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (mut sim, a, b) = two_nodes();
        let (qp_a, qp_b, _cq_a, cq_b) = qp_pair(&mut sim, a, b);
        let dst = sim.alloc(b, 8, 8).unwrap();
        let dmr = sim.register_mr(b, dst, 8, Access::all()).unwrap();
        let src = sim.alloc(a, 8, 8).unwrap();
        let smr = sim.register_mr(a, src, 8, Access::all()).unwrap();

        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        sim.set_cq_listener(
            cq_b,
            ListenMode::Polling,
            Box::new(move |_sim, cqe| {
                seen2.borrow_mut().push(cqe.wqe_index);
            }),
        );
        sim.post_recv(qp_b, WorkRequest::recv(dst, dmr.lkey, 8))
            .unwrap();
        sim.post_send(qp_a, WorkRequest::send(src, smr.lkey, 8))
            .unwrap();
        sim.run().unwrap();
        assert_eq!(seen.borrow().as_slice(), &[0]);
    }

    #[test]
    fn timers_fire_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = Simulator::new(SimConfig::default());
        let order = Rc::new(RefCell::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        sim.at(
            Time::from_us(10),
            Box::new(move |_| o1.borrow_mut().push(10)),
        );
        sim.at(Time::from_us(5), Box::new(move |_| o2.borrow_mut().push(5)));
        sim.run().unwrap();
        assert_eq!(order.borrow().as_slice(), &[5, 10]);
        assert_eq!(sim.now(), Time::from_us(10));
    }

    #[test]
    fn rate_limiter_paces_a_queue() {
        let (mut sim, a, b) = two_nodes();
        let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
        // 100K ops/s = 10 us interval.
        sim.set_rate_limit(qp_a, 1e5, 1);
        for _ in 0..4 {
            sim.post_send(qp_a, WorkRequest::noop().signaled()).unwrap();
        }
        sim.run().unwrap();
        let cqes = sim.poll_cq(cq_a, 8);
        assert_eq!(cqes.len(), 4);
        let dt = cqes[3].time - cqes[2].time;
        assert!((dt.as_us_f64() - 10.0).abs() < 0.5, "paced gap {dt:?}");
    }

    #[test]
    fn wq_order_vs_completion_order_marginals() {
        // Fig 8 shape check at the engine level.
        let run_chain = |wait_prev: bool| -> f64 {
            let (mut sim, a, b) = two_nodes();
            let (qp_a, _qp_b, cq_a, _) = qp_pair(&mut sim, a, b);
            let n = 20;
            let mut wrs = Vec::new();
            for i in 0..n {
                let mut wr = WorkRequest::noop().signaled();
                if wait_prev && i > 0 {
                    wr = wr.wait_prev();
                }
                wrs.push(wr);
            }
            sim.post_send_batch(qp_a, &wrs).unwrap();
            sim.run().unwrap();
            let cqes = sim.poll_cq(cq_a, 64);
            assert_eq!(cqes.len(), n);
            (cqes[n - 1].time - cqes[0].time).as_us_f64() / (n as f64 - 1.0)
        };
        let wq_marginal = run_chain(false);
        let comp_marginal = run_chain(true);
        assert!((wq_marginal - 0.17).abs() < 0.02, "wq {wq_marginal}");
        assert!((comp_marginal - 0.19).abs() < 0.02, "comp {comp_marginal}");
    }

    #[test]
    fn event_budget_stops_runaway_programs() {
        let cfg = SimConfig {
            max_events: 500,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(cfg);
        let n = sim.add_node("solo", HostConfig::default(), NicConfig::connectx5());
        let cq = sim.create_cq(n, 64).unwrap();
        let mqp = sim
            .create_qp(n, QpConfig::new(cq).managed().sq_depth(1))
            .unwrap();
        let peer = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(mqp, peer).unwrap();
        let ctr = sim.alloc(n, 8, 8).unwrap();
        let cmr = sim.register_mr(n, ctr, 8, Access::all()).unwrap();
        sim.post_send_quiet(mqp, WorkRequest::fetch_add(ctr, cmr.rkey, 1, 0, 0))
            .unwrap();
        let ctrl1 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        let ctrl2 = sim.create_qp(n, QpConfig::new(cq)).unwrap();
        sim.connect_qps(ctrl1, ctrl2).unwrap();
        let msq = sim.sq_of(mqp);
        // "Infinite" loop: enable far more iterations than the budget
        // allows.
        sim.post_send(ctrl1, WorkRequest::enable(msq, u64::MAX / 2))
            .unwrap();
        let err = sim.run().unwrap_err();
        assert!(matches!(err, Error::EventBudgetExhausted(_)));
    }
}
