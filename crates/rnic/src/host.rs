//! Host-side model: CPU cores, processes, and crash injection.
//!
//! The paper's baselines and use-cases need a CPU on the other side of the
//! PCIe bus: two-sided RPC handlers (polling or event-driven, §5.2),
//! contended servers (§5.5), and crashing/restarting Memcached instances
//! (§5.6). This module models just enough of a host for those experiments:
//!
//! * a pool of cores with FIFO queueing,
//! * context-switch and scheduler-quantum penalties once runnable threads
//!   exceed cores (the tail-latency mechanism behind Fig 15),
//! * processes that own RDMA resources, with the parent/"hull" ownership
//!   trick of §5.6 ([38]): a crashed child's resources survive if an empty
//!   parent process holds them.

use crate::config::HostConfig;
use crate::engine::PoolResource;
use crate::ids::{NodeId, ProcessId};
use crate::time::Time;

/// A process on a simulated host.
#[derive(Clone, Debug)]
pub struct Process {
    /// Process id (node-local).
    pub id: ProcessId,
    /// Whether the process is running.
    pub alive: bool,
    /// Parent process, if any. Children of a live parent leave their
    /// re-parented resources intact when they crash.
    pub parent: Option<ProcessId>,
    /// Debug name.
    pub name: String,
}

/// One simulated host (the CPU side of a node).
pub struct Host {
    /// The node this host belongs to.
    pub node: NodeId,
    /// Host configuration.
    pub config: HostConfig,
    /// CPU cores.
    pub cores: PoolResource,
    /// Processes, indexed by `ProcessId`.
    pub processes: Vec<Process>,
    /// Number of logically-runnable host threads (polling loops, workers).
    /// Used to decide when scheduler pressure kicks in.
    pub runnable_threads: usize,
    /// Whether the OS is up. An OS panic stops all host-side execution but
    /// leaves memory (and therefore NIC offloads) intact — the §5.6
    /// observation that "RNICs can still access memory even in the
    /// presence of an OS failure".
    pub os_alive: bool,
    /// CPU time consumed (all cores).
    pub stat_cpu_time: Time,
}

impl Host {
    /// Create a host with one pre-spawned "init" process (pid 0), which
    /// plays the role of the always-alive resource hull.
    pub fn new(node: NodeId, config: HostConfig) -> Host {
        let cores = PoolResource::new(config.cores);
        Host {
            node,
            config,
            cores,
            processes: vec![Process {
                id: ProcessId(0),
                alive: true,
                parent: None,
                name: "init".to_string(),
            }],
            runnable_threads: 0,
            os_alive: true,
            stat_cpu_time: Time::ZERO,
        }
    }

    /// Spawn a process, optionally as a child of `parent`.
    pub fn spawn(&mut self, name: &str, parent: Option<ProcessId>) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(Process {
            id,
            alive: true,
            parent,
            name: name.to_string(),
        });
        id
    }

    /// Whether `pid` exists and is alive (and the OS is up).
    pub fn is_alive(&self, pid: ProcessId) -> bool {
        self.os_alive
            && self
                .processes
                .get(pid.index())
                .map(|p| p.alive)
                .unwrap_or(false)
    }

    /// Mark a process dead. Returns true if it was alive.
    pub fn kill(&mut self, pid: ProcessId) -> bool {
        match self.processes.get_mut(pid.index()) {
            Some(p) if p.alive => {
                p.alive = false;
                true
            }
            _ => false,
        }
    }

    /// Restart a dead process (models the OS supervisor respawning it).
    pub fn restart(&mut self, pid: ProcessId) -> bool {
        match self.processes.get_mut(pid.index()) {
            Some(p) if !p.alive => {
                p.alive = true;
                true
            }
            _ => false,
        }
    }

    /// Kernel panic: all host execution stops. NIC state is untouched.
    pub fn os_panic(&mut self) {
        self.os_alive = false;
    }

    /// Execute `demand` of CPU work starting at `now`, modeling scheduler
    /// pressure. Returns the completion time.
    ///
    /// When runnable threads fit in the cores, this is plain FIFO queueing.
    /// When they do not (Fig 15's writer storm), each slice first pays a
    /// context switch, and the *k*-th excess thread waits up to a quantum —
    /// the deterministic analogue of CFS time-slicing. `thread_seq` is a
    /// stable per-request sequence used to spread quantum delays
    /// deterministically instead of randomly.
    pub fn execute(&mut self, now: Time, demand: Time, thread_seq: u64) -> Time {
        debug_assert!(self.os_alive, "execute on a panicked host");
        let mut start_floor = now;
        let mut total = demand;
        let threads = self.runnable_threads.max(1);
        let cores = self.cores.len();
        if threads > cores {
            // Oversubscribed: pay a context switch per slice, and stagger
            // by a deterministic fraction of the scheduling quantum.
            total += self.config.t_context_switch;
            let excess = (threads - cores) as u64;
            let phase = thread_seq % (excess + 1);
            let quantum_wait =
                Time::from_ps(self.config.t_sched_quantum.as_ps() * phase / (excess + 1));
            start_floor += quantum_wait;
        }
        let (_, finish) = self.cores.acquire(start_floor, total);
        self.stat_cpu_time += total;
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HostConfig;

    fn host(cores: usize) -> Host {
        let cfg = HostConfig {
            cores,
            ..HostConfig::default()
        };
        Host::new(NodeId(0), cfg)
    }

    #[test]
    fn init_process_exists_and_lives() {
        let h = host(4);
        assert!(h.is_alive(ProcessId(0)));
        assert!(!h.is_alive(ProcessId(9)));
    }

    #[test]
    fn spawn_kill_restart_cycle() {
        let mut h = host(4);
        let pid = h.spawn("memcached", Some(ProcessId(0)));
        assert!(h.is_alive(pid));
        assert!(h.kill(pid));
        assert!(!h.is_alive(pid));
        assert!(!h.kill(pid)); // double-kill is a no-op
        assert!(h.restart(pid));
        assert!(h.is_alive(pid));
        assert!(!h.restart(pid)); // restart of a live process is a no-op
    }

    #[test]
    fn os_panic_kills_everything_host_side() {
        let mut h = host(4);
        let pid = h.spawn("svc", None);
        h.os_panic();
        assert!(!h.is_alive(pid));
        assert!(!h.is_alive(ProcessId(0)));
        assert!(!h.os_alive);
    }

    #[test]
    fn uncontended_execution_is_fifo() {
        let mut h = host(2);
        h.runnable_threads = 2;
        let d = Time::from_us(10);
        let t1 = h.execute(Time::ZERO, d, 0);
        let t2 = h.execute(Time::ZERO, d, 1);
        // Two cores: both finish at 10 us, no penalty.
        assert_eq!(t1, d);
        assert_eq!(t2, d);
        // Third job queues behind the earliest.
        let t3 = h.execute(Time::ZERO, d, 2);
        assert_eq!(t3, d * 2);
    }

    #[test]
    fn oversubscription_adds_context_switch_and_quantum_delay() {
        let mut h = host(1);
        h.runnable_threads = 4; // 3 excess threads
        let d = Time::from_us(10);
        let base = h.execute(Time::ZERO, d, 0); // phase 0: no quantum wait
        assert_eq!(base, d + h.config.t_context_switch);
        // A later-phase request waits a fraction of the quantum too.
        let mut h2 = host(1);
        h2.runnable_threads = 4;
        let delayed = h2.execute(Time::ZERO, d, 2);
        assert!(delayed > base);
    }

    #[test]
    fn cpu_time_accounting() {
        let mut h = host(2);
        h.runnable_threads = 1;
        h.execute(Time::ZERO, Time::from_us(5), 0);
        h.execute(Time::ZERO, Time::from_us(7), 1);
        assert_eq!(h.stat_cpu_time, Time::from_us(12));
    }
}
