//! Optimized ≡ unoptimized: for random Turing machines and random
//! hash-get / list-walk workloads, the IR's optimized lowering (WAIT
//! elision, restore merging, const deduplication) and the naive lowering
//! must produce **byte-identical final memory and responses** — the
//! semantic-preservation property every pass is held to.

use proptest::prelude::*;
use redn::core::ctx::{ClientDest, OffloadCtx, TableRegion, ValueSource};
use redn::core::ir::DeployOpts;
use redn::core::offloads::hash_lookup::{encode_bucket, HashGetVariant, BUCKET_SIZE};
use redn::core::offloads::list::encode_node;
use redn::core::program::ConstPool;
use redn::core::turing::compile::CompiledTm;
use redn::core::turing::machine::{Move, Rule, TuringMachine};
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::qp::QpConfig;
use rnic_sim::sim::Simulator;
use rnic_sim::wqe::WorkRequest;

const OPT: DeployOpts = DeployOpts {
    optimize: true,
    verify: true,
};
const NAIVE: DeployOpts = DeployOpts {
    optimize: false,
    verify: true,
};

// ---------------------------------------------------------------------
// Random Turing machines
// ---------------------------------------------------------------------

/// Build a total, deterministic machine from raw rule choices: state
/// count 2 + halt, alphabet 2, one rule per (state, symbol).
fn machine_from(choices: &[(u8, u8, u8)]) -> TuringMachine {
    let states = 3u32; // states 0, 1 non-halting; 2 = halt
    let symbols = 2u32;
    let mut rules = Vec::new();
    for (i, &(write, mv, next)) in choices.iter().enumerate() {
        let state = (i as u32) / symbols;
        let read = (i as u32) % symbols;
        rules.push(Rule {
            state,
            read,
            write: (write as u32) % symbols,
            mv: match mv % 3 {
                0 => Move::Left,
                1 => Move::Right,
                _ => Move::Stay,
            },
            next: (next as u32) % states,
        });
    }
    TuringMachine {
        states,
        symbols,
        start: 0,
        halt: 2,
        rules,
    }
}

fn run_tm(
    tm: &TuringMachine,
    tape: &[u32],
    head: usize,
    opts: DeployOpts,
) -> (Vec<u32>, bool, u64) {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("tm", HostConfig::default(), NicConfig::connectx5());
    let mut pool = ConstPool::create(&mut sim, node, 1 << 17, ProcessId(0)).unwrap();
    let compiled = CompiledTm::compile_in_pool_with(
        &mut sim,
        node,
        ProcessId(0),
        &mut pool,
        tm,
        tape,
        head,
        opts,
    )
    .unwrap();
    sim.run().unwrap();
    (
        compiled.read_tape(&sim).unwrap(),
        compiled.halted(&sim).unwrap(),
        compiled.steps(&sim),
    )
}

// ---------------------------------------------------------------------
// Hash-get workloads
// ---------------------------------------------------------------------

struct GetRig {
    sim: Simulator,
    client: NodeId,
    table: u64,
    resp: u64,
    cqp: rnic_sim::ids::QpId,
    crecv_cq: rnic_sim::ids::CqId,
    csrc: u64,
    csrc_lkey: u32,
    off: redn::core::offloads::hash_lookup::HashGetOffload,
}

/// Stand up one server with `nkeys` populated buckets (key `100+i`,
/// value `0xA0+i`) and a recycled Single-probe offload deployed with
/// `opts`.
fn get_rig(nkeys: u64, depth: u32, opts: DeployOpts) -> GetRig {
    let mut sim = Simulator::new(SimConfig::default());
    let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let server = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(client, server, LinkConfig::back_to_back());
    let table = sim.alloc(server, nkeys * BUCKET_SIZE, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, nkeys * BUCKET_SIZE, Access::all())
        .unwrap();
    let values = sim.alloc(server, nkeys * 64, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, nkeys * 64, Access::all())
        .unwrap();
    for i in 0..nkeys {
        let vaddr = values + i * 64;
        sim.mem_write_u64(server, vaddr, 0xA0 + i).unwrap();
        let b = encode_bucket(vaddr, 100 + i);
        sim.mem_write(server, table + i * BUCKET_SIZE, &b).unwrap();
    }
    let resp = sim.alloc(client, 8 * depth as u64, 8).unwrap();
    let rmr = sim
        .register_mr(client, resp, 8 * depth as u64, Access::all())
        .unwrap();
    let csrc = sim.alloc(client, 64, 8).unwrap();
    let smr = sim.register_mr(client, csrc, 64, Access::all()).unwrap();
    let ccq = sim.create_cq(client, 256).unwrap();
    let crecv_cq = sim.create_cq(client, 256).unwrap();
    let cqp = sim
        .create_qp(client, QpConfig::new(ccq).recv_cq(crecv_cq))
        .unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 20, ProcessId(0)).unwrap();
    let off = ctx
        .hash_get()
        .table(TableRegion::of(&tmr))
        .values(ValueSource::of(&vmr, 8))
        .respond_to(ClientDest::of(&rmr))
        .variant(HashGetVariant::Single)
        .pipeline_depth(depth)
        .build_recycled_with(&mut sim, &mut pool, opts)
        .unwrap();
    sim.connect_qps(cqp, off.tp.qp).unwrap();
    GetRig {
        sim,
        client,
        table,
        resp,
        cqp,
        crecv_cq,
        csrc,
        csrc_lkey: smr.lkey,
        off,
    }
}

/// Run a key sequence synchronously; returns per-request hit/miss and the
/// final bytes of the whole response buffer.
fn run_gets(r: &mut GetRig, nkeys: u64, depth: u32, keys: &[u64]) -> (Vec<bool>, Vec<u8>) {
    let mut hits = Vec::new();
    for &key in keys {
        // Key 100+i lives in bucket i; out-of-range keys probe the
        // congruent bucket and miss.
        let bucket = r.table + ((key - 100) % nkeys) * BUCKET_SIZE;
        let _ = r.off.take_instance().unwrap();
        r.sim.post_recv(r.cqp, WorkRequest::recv(0, 0, 0)).unwrap();
        let payload = r.off.client_payload(key, &[bucket]);
        r.sim.mem_write(r.client, r.csrc, &payload).unwrap();
        r.sim
            .post_send(
                r.cqp,
                WorkRequest::send(r.csrc, r.csrc_lkey, payload.len() as u32),
            )
            .unwrap();
        r.sim.run().unwrap();
        hits.push(!r.sim.poll_cq(r.crecv_cq, 8).is_empty());
        r.off.complete_instance();
    }
    let buf = r
        .sim
        .mem_read(r.client, r.resp, 8 * depth as u64)
        .unwrap()
        .to_vec();
    (hits, buf)
}

// ---------------------------------------------------------------------
// List-walk workloads
// ---------------------------------------------------------------------

struct WalkRig {
    sim: Simulator,
    client: NodeId,
    head: u64,
    resp: u64,
    cqp: rnic_sim::ids::QpId,
    crecv_cq: rnic_sim::ids::CqId,
    csrc: u64,
    csrc_lkey: u32,
    off: redn::core::offloads::list::ListWalkOffload,
}

const WALK_VAL: u32 = 16;

fn walk_rig(list_keys: &[u64], depth: u32, opts: DeployOpts) -> WalkRig {
    let mut sim = Simulator::new(SimConfig::default());
    let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let server = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(client, server, LinkConfig::back_to_back());
    let node_size = 16 + WALK_VAL as u64;
    let n = list_keys.len() as u64;
    let nodes = sim.alloc(server, n * node_size, 64).unwrap();
    let lmr = sim
        .register_mr(server, nodes, n * node_size, Access::all())
        .unwrap();
    for (i, &k) in list_keys.iter().enumerate() {
        let addr = nodes + i as u64 * node_size;
        let next = if (i as u64) + 1 < n {
            addr + node_size
        } else {
            0
        };
        let value = vec![(i + 1) as u8; WALK_VAL as usize];
        sim.mem_write(server, addr, &encode_node(next, k, &value))
            .unwrap();
    }
    let resp_len = WALK_VAL as u64 * depth as u64;
    let resp = sim.alloc(client, resp_len, 8).unwrap();
    let rmr = sim
        .register_mr(client, resp, resp_len, Access::all())
        .unwrap();
    let csrc = sim.alloc(client, 256, 8).unwrap();
    let smr = sim.register_mr(client, csrc, 256, Access::all()).unwrap();
    let ccq = sim.create_cq(client, 256).unwrap();
    let crecv_cq = sim.create_cq(client, 256).unwrap();
    let cqp = sim
        .create_qp(client, QpConfig::new(ccq).recv_cq(crecv_cq))
        .unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 20, ProcessId(0)).unwrap();
    let off = ctx
        .list_walk()
        .list(TableRegion::of(&lmr))
        .value_len(WALK_VAL)
        .respond_to(ClientDest::of(&rmr))
        .max_nodes(list_keys.len())
        .pipeline_depth(depth)
        .build_recycled_with(&mut sim, &mut pool, opts)
        .unwrap();
    sim.connect_qps(cqp, off.tp.qp).unwrap();
    WalkRig {
        sim,
        client,
        head: nodes,
        resp,
        cqp,
        crecv_cq,
        csrc,
        csrc_lkey: smr.lkey,
        off,
    }
}

fn run_walks(r: &mut WalkRig, depth: u32, keys: &[u64]) -> (Vec<bool>, Vec<u8>) {
    let mut hits = Vec::new();
    for &key in keys {
        let _ = r.off.take_instance().unwrap();
        r.sim.post_recv(r.cqp, WorkRequest::recv(0, 0, 0)).unwrap();
        let payload = r.off.client_payload(r.head, key);
        r.sim.mem_write(r.client, r.csrc, &payload).unwrap();
        r.sim
            .post_send(
                r.cqp,
                WorkRequest::send(r.csrc, r.csrc_lkey, payload.len() as u32),
            )
            .unwrap();
        r.sim.run().unwrap();
        hits.push(!r.sim.poll_cq(r.crecv_cq, 8).is_empty());
        r.off.complete_instance();
    }
    let buf = r
        .sim
        .mem_read(r.client, r.resp, WALK_VAL as u64 * depth as u64)
        .unwrap()
        .to_vec();
    (hits, buf)
}

use rnic_sim::mem::Access;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (total, deterministic) Turing machines: the optimized and
    /// naive lowerings must agree with each other *and* with the
    /// reference interpreter on the final tape, halting, and step count.
    #[test]
    fn random_tms_agree_between_lowerings(
        choices in prop::collection::vec((0u8..2, 0u8..3, 0u8..3), 4..5),
        tape_bits in prop::collection::vec(0u32..2, 5..8),
        head_pick in 0usize..5,
    ) {
        prop_assume!(choices.len() == 4); // one rule per (state, symbol)
        let tm = machine_from(&choices);
        prop_assert!(tm.validate().is_ok());
        let head = head_pick % tape_bits.len();
        // Only compare machines the reference halts within budget —
        // non-halting ones never drain the simulator.
        let reference = tm.run(&tape_bits, head, 128);
        prop_assume!(reference.halted);

        let (tape_o, halted_o, steps_o) = run_tm(&tm, &tape_bits, head, OPT);
        let (tape_n, halted_n, steps_n) = run_tm(&tm, &tape_bits, head, NAIVE);
        prop_assert_eq!(&tape_o, &reference.tape, "optimized vs reference");
        prop_assert_eq!(&tape_n, &reference.tape, "naive vs reference");
        prop_assert!(halted_o && halted_n);
        prop_assert_eq!(steps_o, reference.steps);
        prop_assert_eq!(steps_n, reference.steps);
    }

    /// Random hash-get workloads (hits and misses interleaved): identical
    /// hit/miss patterns and byte-identical client response buffers under
    /// both lowerings.
    #[test]
    fn random_hash_workloads_agree_between_lowerings(
        keys in prop::collection::vec(100u64..116, 1..24),
    ) {
        let (nkeys, depth) = (8u64, 4u32);
        let mut opt = get_rig(nkeys, depth, OPT);
        let mut naive = get_rig(nkeys, depth, NAIVE);
        let (hits_o, buf_o) = run_gets(&mut opt, nkeys, depth, &keys);
        let (hits_n, buf_n) = run_gets(&mut naive, nkeys, depth, &keys);
        // Sanity: keys < 108 hit, the rest miss.
        for (k, h) in keys.iter().zip(&hits_o) {
            prop_assert_eq!(*h, *k < 100 + nkeys, "key {}", k);
        }
        prop_assert_eq!(hits_o, hits_n, "hit/miss patterns diverge");
        prop_assert_eq!(buf_o, buf_n, "response buffers diverge");
    }

    /// Random list-walk workloads: identical hit/miss patterns and
    /// byte-identical response buffers under both lowerings.
    #[test]
    fn random_list_workloads_agree_between_lowerings(
        keys in prop::collection::vec(40u64..52, 1..16),
    ) {
        let list_keys = [40u64, 41, 42, 43, 44];
        let depth = 2u32;
        let mut opt = walk_rig(&list_keys, depth, OPT);
        let mut naive = walk_rig(&list_keys, depth, NAIVE);
        let (hits_o, buf_o) = run_walks(&mut opt, depth, &keys);
        let (hits_n, buf_n) = run_walks(&mut naive, depth, &keys);
        for (k, h) in keys.iter().zip(&hits_o) {
            prop_assert_eq!(*h, list_keys.contains(k), "key {}", k);
        }
        prop_assert_eq!(hits_o, hits_n, "hit/miss patterns diverge");
        prop_assert_eq!(buf_o, buf_n, "response buffers diverge");
    }
}
