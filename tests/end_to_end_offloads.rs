//! Cross-crate integration: full client→NIC→client offload round trips
//! spanning rnic-sim, redn-core and redn-kv.

use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::baselines::{two_sided_get, ClientEndpoint, OneSidedClient, TwoSidedMode};
use redn::kv::hopscotch::HopscotchTable;
use redn::kv::memcached::{redn_get, MemcachedServer};
use redn::prelude::*;
use rnic_sim::config::{LinkConfig, SimConfig};
use rnic_sim::ids::ProcessId;
use rnic_sim::qp::QpConfig;

fn testbed() -> (Simulator, rnic_sim::ids::NodeId, rnic_sim::ids::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    (sim, c, s)
}

#[test]
fn memcached_get_three_frontends_agree() {
    // The same store, served three ways, must return the same value —
    // and in the paper's latency order.
    let (mut sim, c, s) = testbed();
    let mc = MemcachedServer::create(&mut sim, s, 1024, 64, ProcessId(0)).unwrap();
    mc.populate(&mut sim, 32).unwrap();
    sim.set_runnable_threads(s, 1);

    // RedN.
    let ep = ClientEndpoint::create(&mut sim, c, 64).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 20)
        .build(&mut sim)
        .unwrap();
    let mut off = mc
        .redn_frontend(&mut sim, &ctx, ep.dest(), HashGetVariant::Parallel)
        .unwrap();
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();
    let (redn_lat, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, 7).unwrap();
    assert!(found);
    let redn_value = sim.mem_read(c, ep.resp_buf, 1).unwrap()[0];

    // Two-sided through the VMA socket stack (the Fig 14 baseline; the
    // paper calls raw polling RPC "competitive", so the decisive gap is
    // against VMA).
    let rpc = mc.two_sided_frontend(&mut sim, TwoSidedMode::Vma).unwrap();
    let ep2 = ClientEndpoint::create(&mut sim, c, 64).unwrap();
    sim.connect_qps(ep2.qp, rpc.qp).unwrap();
    let (two_lat, found) = two_sided_get(&mut sim, &ep2, 7).unwrap();
    assert!(found);
    let two_value = sim.mem_read(c, ep2.resp_buf, 1).unwrap()[0];

    assert_eq!(redn_value, two_value);
    assert_eq!(redn_value, 7);
    assert!(
        redn_lat < two_lat,
        "RedN {redn_lat:?} must beat two-sided {two_lat:?}"
    );
}

#[test]
fn one_sided_and_redn_read_identical_bytes() {
    let (mut sim, c, s) = testbed();
    let mut table = HopscotchTable::create(&mut sim, s, 512, 64, ProcessId(0)).unwrap();
    table
        .insert_at_candidate(&mut sim, 99, &[0xAB; 64], 0)
        .unwrap()
        .unwrap();

    let one = OneSidedClient::create(&mut sim, c, &table).unwrap();
    let scq = sim.create_cq(s, 16).unwrap();
    let sqp = sim.create_qp(s, QpConfig::new(scq)).unwrap();
    sim.connect_qps(one.ep.qp, sqp).unwrap();
    let (_, found) = one.get(&mut sim, 99, &table.candidates(99)).unwrap();
    assert!(found);
    assert_eq!(
        sim.mem_read(c, one.ep.resp_buf, 64).unwrap(),
        vec![0xAB; 64]
    );
}

#[test]
fn offload_serves_many_sequential_requests() {
    // Stress the arming/recycling path: 50 gets through one offload.
    let (mut sim, c, s) = testbed();
    let mc = MemcachedServer::create(&mut sim, s, 2048, 64, ProcessId(0)).unwrap();
    mc.populate(&mut sim, 64).unwrap();
    let ep = ClientEndpoint::create(&mut sim, c, 64).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 22)
        .build(&mut sim)
        .unwrap();
    let mut off = mc
        .redn_frontend(&mut sim, &ctx, ep.dest(), HashGetVariant::Sequential)
        .unwrap();
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();
    for i in 0..50u64 {
        let key = 1 + (i % 64);
        let (_, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, key).unwrap();
        assert!(found, "request {i} key {key}");
        assert_eq!(
            sim.mem_read(c, ep.resp_buf, 1).unwrap()[0],
            (key & 0xFF) as u8
        );
    }
    assert_eq!(off.armed(), 50);
}

#[test]
fn get_miss_never_responds_but_server_stays_healthy() {
    let (mut sim, c, s) = testbed();
    let mc = MemcachedServer::create(&mut sim, s, 1024, 64, ProcessId(0)).unwrap();
    mc.populate(&mut sim, 8).unwrap();
    let ep = ClientEndpoint::create(&mut sim, c, 64).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 20)
        .build(&mut sim)
        .unwrap();
    let mut off = mc
        .redn_frontend(&mut sim, &ctx, ep.dest(), HashGetVariant::Parallel)
        .unwrap();
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();
    // Miss, then hit: the failed CAS must not wedge the offload.
    let (_, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, 4040).unwrap();
    assert!(!found);
    let (_, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, 3).unwrap();
    assert!(found);
}
