//! Property-based cross-validation of the Turing-machine compiler against
//! the reference interpreter — the repository's strongest claim, so it
//! gets the strongest test.

use proptest::prelude::*;
use redn::core::turing::compile::CompiledTm;
use redn::core::turing::machine::{Move, Rule, TuringMachine};
use redn::prelude::*;
use rnic_sim::config::SimConfig;
use rnic_sim::ids::ProcessId;

fn nic_run(tm: &TuringMachine, tape: &[u32], head: usize) -> (Vec<u32>, bool, u64) {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let compiled = CompiledTm::compile(&mut sim, node, ProcessId(0), tm, tape, head).unwrap();
    // Budget: a halting machine drains the event queue; a diverging one
    // is cut off by time (these generated machines always halt).
    sim.run_until(rnic_sim::time::Time::from_ms(50)).unwrap();
    (
        compiled.read_tape(&sim).unwrap(),
        compiled.halted(&sim).unwrap(),
        compiled.steps(&sim),
    )
}

/// Generate small machines that provably halt: every rule moves right and
/// the rightmost cells force the halt state, so a run never exceeds
/// `tape_len` steps.
fn arb_halting_tm() -> impl Strategy<Value = TuringMachine> {
    let states = 3u32; // 2 working states + halt
    let symbols = 2u32;
    let rule = |state: u32, read: u32| {
        (0u32..symbols, 0u32..states).prop_map(move |(write, next)| Rule {
            state,
            read,
            write,
            mv: Move::Right,
            next,
        })
    };
    (rule(0, 0), rule(0, 1), rule(1, 0), rule(1, 1)).prop_map(move |(a, b, c, d)| TuringMachine {
        states,
        symbols,
        start: 0,
        halt: 2,
        rules: vec![a, b, c, d],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn compiled_tm_matches_reference(
        tm in arb_halting_tm(),
        tape in prop::collection::vec(0u32..2, 4..8),
    ) {
        // Right-moving machines fall off the right edge; the reference
        // clamps the head there. Give both the same finite tape and
        // compare after the same number of steps.
        let max_steps = tape.len() as u64;
        let reference = tm.run(&tape, 0, max_steps);
        // Skip the degenerate case where the machine never halts within
        // the tape (it would spin on the clamped last cell).
        prop_assume!(reference.halted);
        let (nic_tape, nic_halted, nic_steps) = nic_run(&tm, &tape, 0);
        prop_assert!(nic_halted, "NIC machine must halt like the reference");
        prop_assert_eq!(nic_steps, reference.steps);
        prop_assert_eq!(nic_tape, reference.tape);
    }
}

#[test]
fn busy_beaver_full_fidelity() {
    let tm = TuringMachine::busy_beaver_2();
    let tape = vec![0u32; 11];
    let reference = tm.run(&tape, 5, 100);
    let (nic_tape, halted, steps) = nic_run(&tm, &tape, 5);
    assert!(halted);
    assert_eq!(steps, reference.steps);
    assert_eq!(nic_tape, reference.tape);
    assert_eq!(nic_tape.iter().sum::<u32>(), 4);
}

#[test]
fn increments_across_carry_chains() {
    // Carry propagation is the interesting case: 0b0111 + 1 flips four
    // cells and needs four rule firings of the same rule pair.
    let tm = TuringMachine::binary_increment();
    for value in [0u32, 1, 3, 7, 15, 21] {
        let tape: Vec<u32> = (0..6).map(|i| (value >> i) & 1).collect();
        let (nic_tape, halted, _) = nic_run(&tm, &tape, 0);
        assert!(halted, "value {value}");
        let got: u32 = nic_tape.iter().enumerate().map(|(i, b)| b << i).sum();
        assert_eq!(got, value + 1, "value {value}");
    }
}
