//! Property tests for the cluster shard router: rendezvous consistent
//! hashing stays balanced across 4–16 shards and a lost shard remaps
//! only ~1/N of the key space (nothing else moves).

use proptest::prelude::*;
use redn::cluster::router::ShardRouter;

const KEYS: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distribution_is_balanced_within_20_percent(
        shards in 4usize..=16,
        offset in any::<u32>(),
    ) {
        let r = ShardRouter::new(0..shards);
        let base = offset as u64;
        let mut counts = vec![0u64; shards];
        for key in base..base + KEYS {
            counts[r.route(key)] += 1;
        }
        let expected = KEYS as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            prop_assert!(
                dev <= 0.20,
                "shard {s} holds {c} keys, expected {expected:.0} ±20% ({} shards)",
                shards
            );
        }
    }

    #[test]
    fn node_loss_remaps_only_the_lost_shards_keys(
        shards in 4usize..=16,
        lost_pick in any::<u64>(),
        offset in any::<u32>(),
    ) {
        let mut r = ShardRouter::new(0..shards);
        let lost = (lost_pick % shards as u64) as usize;
        let base = offset as u64;
        let before: Vec<usize> = (base..base + KEYS).map(|k| r.route(k)).collect();
        prop_assert!(r.remove_shard(lost));

        let mut moved = 0u64;
        for (i, &owner) in before.iter().enumerate() {
            let now = r.route(base + i as u64);
            if owner == lost {
                moved += 1;
                prop_assert!(now != lost, "key routed to a removed shard");
            } else {
                // The minimal-disruption property: survivors keep
                // every key they had.
                prop_assert_eq!(now, owner, "surviving shard lost a key");
            }
        }
        // Only the lost shard's share moved — ~1/N of the key space.
        let expected = KEYS as f64 / shards as f64;
        prop_assert!(
            (moved as f64) < 1.5 * expected && (moved as f64) > 0.5 * expected,
            "moved {moved} keys, expected ~{expected:.0} (1/{shards})"
        );
    }

    #[test]
    fn adding_a_shard_steals_about_one_share(
        shards in 4usize..=15,
        offset in any::<u32>(),
    ) {
        let mut r = ShardRouter::new(0..shards);
        let base = offset as u64;
        let before: Vec<usize> = (base..base + KEYS).map(|k| r.route(k)).collect();
        r.add_shard(shards);
        let mut moved = 0u64;
        for (i, &owner) in before.iter().enumerate() {
            let now = r.route(base + i as u64);
            if now != owner {
                moved += 1;
                // Keys only ever move *to* the new shard.
                prop_assert_eq!(now, shards);
            }
        }
        let expected = KEYS as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) < 1.5 * expected && (moved as f64) > 0.5 * expected,
            "new shard stole {moved} keys, expected ~{expected:.0}"
        );
    }
}
