//! The ablation DESIGN.md §5.1 calls out: self-modifying programs are
//! only correct under doorbell ordering. Running the *same* modification
//! against an unmanaged (prefetching) queue silently executes stale code
//! — the §3.1 consistency hazard that motivates managed queues.

use redn::core::builder::ChainBuilder;
use redn::core::ctx::ChainQueueBuilder;
use redn::prelude::*;
use rnic_sim::config::SimConfig;
use rnic_sim::ids::ProcessId;
use rnic_sim::verbs::Opcode;
use rnic_sim::wqe::WorkRequest;

/// Conditional header helpers (Fig 4 compare/swap words).
mod helpers {
    pub use redn::core::encode::{cond_compare, cond_swap};
}

fn rig() -> (Simulator, rnic_sim::ids::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    (sim, node)
}

/// Build the Fig 4 transmutation against a target queue that is either
/// managed (correct) or unmanaged (hazard): returns whether the action
/// fired.
fn run_conditional(managed_target: bool) -> bool {
    let (mut sim, node) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .build(&mut sim)
        .unwrap();
    let mut act_b = ChainQueueBuilder::new(node, ProcessId(0));
    if managed_target {
        act_b = act_b.managed();
    }
    let act = act_b.build(&mut sim).unwrap();
    let flag = sim.alloc(node, 8, 8).unwrap();
    let fmr = sim.register_mr(node, flag, 8, Access::all()).unwrap();
    let one = sim.alloc(node, 8, 8).unwrap();
    let omr = sim.register_mr(node, one, 8, Access::all()).unwrap();
    sim.mem_write_u64(node, one, 1).unwrap();

    // Action placeholder: NOOP formatted as WRITE(one -> flag), id = 7.
    let mut placeholder = WorkRequest::write(one, omr.lkey, 8, flag, fmr.rkey).with_id(7);
    placeholder.wqe.opcode = Opcode::Noop;
    let mut act_b = ChainBuilder::new(&sim, act);
    let staged = act_b.stage(placeholder);
    act_b.post(&mut sim).unwrap();

    // On an UNMANAGED queue the post rings the doorbell: the NIC
    // prefetches the NOOP before the CAS lands. On a managed queue the
    // fetch waits for the ENABLE below.
    let mut ctrl_b = ChainBuilder::new(&sim, ctrl);
    ctrl_b.stage(
        WorkRequest::cas(
            staged.addr(redn::core::encode::WqeField::Header),
            act.ring.rkey,
            helpers::cond_compare(7),
            helpers::cond_swap(Opcode::Write, 7),
            0,
            0,
        )
        .signaled(),
    );
    ctrl_b.stage(WorkRequest::wait(ctrl.cq, 1));
    ctrl_b.stage(WorkRequest::enable(act.sq, staged.index + 1));
    ctrl_b.post(&mut sim).unwrap();
    sim.run().unwrap();
    sim.mem_read_u64(node, flag).unwrap() == 1
}

#[test]
fn managed_queue_executes_the_modified_wqe() {
    assert!(
        run_conditional(true),
        "doorbell ordering must observe the CAS-transmuted WRITE"
    );
}

#[test]
fn unmanaged_queue_executes_stale_code() {
    // The identical program on a prefetching queue: the CAS still lands
    // in host memory, but the NIC already snapshotted the NOOP. The
    // branch silently does not fire — this is why every RedN action
    // queue is managed.
    assert!(
        !run_conditional(false),
        "prefetch hazard: the stale NOOP should have executed"
    );
}

#[test]
fn memory_shows_the_modification_either_way() {
    // The hazard is in the *fetch*, not the memory: after the run the
    // header word in host memory is transmuted in both cases.
    let (mut sim, node) = rig();
    let act = ChainQueueBuilder::new(node, ProcessId(0))
        .build(&mut sim)
        .unwrap();
    let mut placeholder = WorkRequest::noop().with_id(9);
    placeholder.wqe.opcode = Opcode::Noop;
    let mut act_b = ChainBuilder::new(&sim, act);
    let staged = act_b.stage(placeholder);
    act_b.post(&mut sim).unwrap();
    sim.run().unwrap();

    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .build(&mut sim)
        .unwrap();
    let mut ctrl_b = ChainBuilder::new(&sim, ctrl);
    ctrl_b.stage(WorkRequest::cas(
        staged.addr(redn::core::encode::WqeField::Header),
        act.ring.rkey,
        helpers::cond_compare(9),
        helpers::cond_swap(Opcode::Write, 9),
        0,
        0,
    ));
    ctrl_b.post(&mut sim).unwrap();
    sim.run().unwrap();
    let word = sim
        .mem_read_u64(node, staged.addr(redn::core::encode::WqeField::Header))
        .unwrap();
    let (op, id) = rnic_sim::wqe::split_header(word);
    assert_eq!(op, Opcode::Write as u16);
    assert_eq!(id, 9);
}
