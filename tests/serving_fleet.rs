//! End-to-end coverage of the pipelined serving layer: the ISSUE-2
//! acceptance bar (a fleet of >= 4 clients at pipeline depth >= 4
//! sustains >= 3x the throughput of back-to-back synchronous gets on
//! the same sim config) plus the typed Session post/reap API and the
//! deprecated free-function shims.

use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{sync_baseline_ops_per_sec, FleetSpec, ServingFleet};
use redn::kv::session::{Completion, Session, SessionOpts};
use redn::kv::workload::Workload;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::sim::Simulator;

/// The serving testbed: dual-port server CX5 (Table 4's configuration —
/// the fleet shards trigger points across both ports' fetch engines).
fn testbed() -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    (sim, c, s)
}

fn stand_up(nkeys: u64) -> (Simulator, NodeId, MemcachedServer, OffloadCtx) {
    let (mut sim, c, s) = testbed();
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, nkeys).unwrap();
    let ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    (sim, c, server, ctx)
}

#[test]
fn fleet_sustains_3x_the_synchronous_throughput() {
    const NKEYS: u64 = 1024;
    const OPS_PER_CLIENT: u64 = 150;

    // Baseline: back-to-back synchronous gets, same sim config.
    let sync_ops_per_sec = {
        let (mut sim, c, server, mut ctx) = stand_up(NKEYS);
        let mut workload = Workload::sequential(1, NKEYS as usize);
        sync_baseline_ops_per_sec(
            &mut sim,
            &mut ctx,
            &server,
            c,
            HashGetVariant::Parallel,
            OPS_PER_CLIENT,
            &mut workload,
        )
        .unwrap()
    };

    // Fleet: 4 clients, pipeline depth 4, closed loop with K=4, served
    // by self-recycling offloads (the NIC re-arms between rounds).
    let (mut sim, c, server, mut ctx) = stand_up(NKEYS);
    let spec = FleetSpec::gets(4, 4, HashGetVariant::Sequential, true);
    let workloads = Workload::split_sequential(NKEYS, 4);
    let mut fleet =
        ServingFleet::deploy(&mut sim, &mut ctx, &server, None, c, spec, workloads).unwrap();
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 4)
        .unwrap();

    assert_eq!(stats.ops, 4 * OPS_PER_CLIENT);
    assert_eq!(stats.timeouts, 0, "hit-only workload must not time out");
    assert_eq!(stats.host_arm_calls, 0, "the NIC re-arms, not the host");
    assert_eq!(stats.server_doorbells, 0, "no server MMIO in steady state");
    assert_eq!(stats.server_posts, 0, "no server posts in steady state");
    let speedup = stats.ops_per_sec / sync_ops_per_sec;
    assert!(
        speedup >= 3.0,
        "fleet {:.0} ops/s must be >= 3x sync {:.0} ops/s (got {:.2}x)",
        stats.ops_per_sec,
        sync_ops_per_sec,
        speedup
    );
}

#[test]
fn session_post_reap_round_trips_values_through_instance_slots() {
    let (mut sim, c, server, mut ctx) = stand_up(64);
    let mut session = Session::connect_get(
        &mut sim,
        &mut ctx,
        &server,
        c,
        HashGetVariant::Parallel,
        SessionOpts {
            pipeline_depth: 4,
            self_recycling: false,
            ..SessionOpts::default()
        },
    )
    .unwrap();

    // Post four gets back-to-back, then run and reap.
    let keys = [3u64, 17, 42, 60];
    let mut pending = Vec::new();
    for &k in &keys {
        pending.push(session.get(&mut sim, k).unwrap());
    }
    assert_eq!(session.endpoint().live_requests(), 4);
    sim.run().unwrap();
    let reaped = session.reap(&mut sim, 16);
    assert_eq!(reaped.len(), 4);
    assert_eq!(session.endpoint().live_requests(), 0);
    assert_eq!(session.endpoint().outstanding_recvs(), 0);
    for done in reaped {
        assert!(matches!(done, Completion::Get(_)), "typed get completion");
        let p = pending
            .iter()
            .find(|p| session.response_tag(p.instance) == done.tag())
            .expect("completion matches a posted request");
        // Each instance's value landed in its own slot, tagged by key.
        assert_eq!(
            session.read_value(&sim, p.instance, 1).unwrap()[0],
            (p.key & 0xFF) as u8,
            "key {} in slot {}",
            p.key,
            p.slot
        );
        session.complete();
    }
}

/// Successor of the removed free-function shim test (`redn_get_nb` /
/// `redn_get_burst` / `redn_reap` are gone): the same single + burst +
/// reap flow, expressed through the typed Session API that replaced
/// them.
#[test]
fn session_api_covers_the_old_free_function_flow() {
    use redn::kv::session::{Session, SessionOpts};

    let (mut sim, c, server, mut ctx) = stand_up(64);
    let mut session = Session::connect_get(
        &mut sim,
        &mut ctx,
        &server,
        c,
        HashGetVariant::Sequential,
        SessionOpts {
            pipeline_depth: 4,
            self_recycling: true,
            ..SessionOpts::default()
        },
    )
    .unwrap();

    let single = session.get(&mut sim, 7).unwrap();
    let burst = session.get_burst(&mut sim, &[11, 23]).unwrap();
    assert_eq!(burst.len(), 2);
    sim.run().unwrap();
    let reaped = session.reap(&mut sim, 8);
    assert_eq!(reaped.len(), 3, "session-posted gets all complete");
    for _ in 0..3 {
        session.complete();
    }
    assert_eq!(
        session.read_value(&sim, single.instance, 1).unwrap()[0],
        7,
        "single get lands in its slot"
    );
}

#[test]
fn open_loop_saturates_at_capacity_instead_of_wedging() {
    let (mut sim, c, server, mut ctx) = stand_up(512);
    let spec = FleetSpec::gets(4, 4, HashGetVariant::Sequential, true);
    let workloads = Workload::split_sequential(512, 4);
    let mut fleet =
        ServingFleet::deploy(&mut sim, &mut ctx, &server, None, c, spec, workloads).unwrap();
    // Offer ~3x the plausible capacity: the fleet must finish every op
    // (queueing, not dropping) with achieved throughput below offered.
    let stats = fleet
        .run_open_loop(&mut sim, ctx.pool_mut(), 60, 600_000.0)
        .unwrap();
    assert_eq!(stats.ops, 4 * 60);
    assert_eq!(stats.timeouts, 0);
    let offered = stats.offered_ops_per_sec.unwrap();
    assert!(
        stats.ops_per_sec < offered,
        "overload must show achieved {} < offered {offered}",
        stats.ops_per_sec
    );
    // Queueing delay is charged from the scheduled time: the
    // scheduled-time tail must dominate the service-time tail.
    let lat = stats.latency.unwrap();
    let svc = stats.service_latency.unwrap();
    assert!(
        lat.p99_us > lat.p50_us,
        "overload latency distribution has a tail"
    );
    assert!(
        lat.p99_us >= svc.p99_us,
        "scheduled-time p99 {} must cover service-time p99 {}",
        lat.p99_us,
        svc.p99_us
    );
}
