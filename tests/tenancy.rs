//! Multi-tenant packing, QoS and admission coverage (ISSUE-9): the
//! `TenantPacker` proven against random tenant mixes (every admitted
//! packing deploys through the `DeploymentVerifier` with zero
//! diagnostics and never exceeds a quota), typed rejections for
//! over-subscribed specs, the noisy-neighbor enforcement bounds, and
//! `FleetStats::merge` unioning per-tenant slices across packed fleets.

use proptest::prelude::*;
use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::liststore::ListStore;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{FleetSpec, FleetStats, ServingFleet};
use redn::kv::tenancy::{NicGeometry, PackError, TenantPacker, TenantQuotas, TenantSpec};
use redn::kv::workload::Workload;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::sim::Simulator;

const NKEYS: u64 = 512;
const NLISTS: u64 = 64;
const WALK_NODES: usize = 4;

fn stand_up() -> (Simulator, NodeId, MemcachedServer, ListStore, OffloadCtx) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, NKEYS).unwrap();
    let store = ListStore::create(&mut sim, s, NLISTS, WALK_NODES, 64, ProcessId(0)).unwrap();
    let ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    (sim, c, server, store, ctx)
}

/// Pack `tenants` onto the testbed NIC and deploy the packing — the
/// admitted placement must survive the deploy-time isolation proof.
fn deploy_packed(tenants: &[TenantSpec]) -> (Simulator, OffloadCtx, MemcachedServer, ServingFleet) {
    let (mut sim, c, server, store, mut ctx) = stand_up();
    let spec = FleetSpec::tenants(NicGeometry::of(&sim, server.node), tenants).unwrap();
    let workloads = if spec.get_clients() > 0 {
        Workload::split_sequential(NKEYS, spec.get_clients())
    } else {
        Vec::new()
    };
    let fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        c,
        spec,
        workloads,
    )
    .unwrap();
    (sim, ctx, server, fleet)
}

/// The tentpole acceptance bar: a packed fleet of >= 4 tenants on shared
/// PUs deploys through the `DeploymentVerifier` with zero diagnostics,
/// every proven program carries a tenant-qualified label, and each
/// tenant's slice stays fully NIC-armed through a closed-loop run.
#[test]
fn packed_four_tenant_fleet_proves_clean_and_stays_nic_armed() {
    let tenants = vec![
        TenantSpec::new("analytics").with_gets(2, 8, HashGetVariant::Sequential, true),
        // Sequential (two-probe) gets throughout: the Single variant
        // reports cuckoo-displaced keys as misses (no completion), which
        // the closed loop would book as timeouts.
        TenantSpec::new("cache").with_gets(1, 4, HashGetVariant::Sequential, true),
        TenantSpec::new("graph").with_walks(2, 4, WALK_NODES, true),
        TenantSpec::new("mixed")
            .with_gets(1, 4, HashGetVariant::Sequential, true)
            .with_walks(1, 4, WALK_NODES, true),
    ];
    let (mut sim, mut ctx, _server, mut fleet) = deploy_packed(&tenants);
    let report = fleet.isolation_report();
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.programs, 7);
    assert_eq!(report.labels.len(), 7);
    for label in &report.labels {
        assert!(
            label.contains('/'),
            "program label '{label}' is not tenant-qualified"
        );
    }
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), 40, 4)
        .unwrap();
    assert_eq!(stats.per_tenant.len(), 4);
    for ts in &stats.per_tenant {
        assert!(ts.ops > 0, "tenant '{}' completed nothing", ts.tenant);
        assert_eq!(
            ts.host_arm_calls, 0,
            "tenant '{}' took host arm calls",
            ts.tenant
        );
        assert_eq!(ts.timeouts, 0, "tenant '{}': {:?}", ts.tenant, ts);
    }
    assert_eq!(
        stats.per_tenant.iter().map(|t| t.ops).sum::<u64>(),
        stats.ops,
        "per-tenant slices must partition the aggregate"
    );
}

/// 1-8 random tenants: each 1-2 clients of one self-recycling family,
/// half of them carrying the tightest quotas that still admit (packing
/// must succeed and respect them).
fn arb_tenants() -> impl Strategy<Value = Vec<TenantSpec>> {
    prop::collection::vec((1usize..=2, 2u32..=6, any::<bool>(), any::<bool>()), 1..9).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (clients, depth, walks, quota))| {
                    let t = TenantSpec::new(format!("t{i}"));
                    let t = if walks {
                        t.with_walks(clients, depth, WALK_NODES, true)
                    } else {
                        t.with_gets(clients, depth, HashGetVariant::Sequential, true)
                    };
                    if quota {
                        // The tightest PU cap that still admits, plus a
                        // ring cap sized for the lowered ring (each armed
                        // instance lowers to several WQEs — body ops,
                        // fix-ups, restores — not just its floor slot).
                        let q = TenantQuotas {
                            pus: Some(t.pu_demand()),
                            ring_slots: Some(t.ring_slot_floor() * 16),
                            ..TenantQuotas::default()
                        };
                        t.with_quotas(q)
                    } else {
                        t
                    }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite 3: random 1-8 tenant mixes always produce packings
    /// that (a) place every client on a real port/PU, (b) claim exactly
    /// each tenant's PU demand and never exceed an admitted quota, and
    /// (c) deploy through the `DeploymentVerifier` with zero
    /// diagnostics.
    #[test]
    fn random_mixes_pack_within_quotas_and_prove_clean(tenants in arb_tenants()) {
        let geometry = NicGeometry { ports: 2, pus_per_port: 8 };
        let packing = TenantPacker::new(geometry).pack(&tenants).unwrap();
        let nclients: usize = tenants.iter().map(|t| t.clients()).sum();
        prop_assert_eq!(packing.placements.len(), nclients);
        for p in &packing.placements {
            prop_assert!(p.port < geometry.ports);
            prop_assert!(p.pu_base < geometry.pus_per_port);
        }
        prop_assert_eq!(packing.pus_claimed.len(), tenants.len());
        for (t, claimed) in tenants.iter().zip(&packing.pus_claimed) {
            prop_assert_eq!(*claimed, t.pu_demand());
            if let Some(cap) = t.quotas.pus {
                prop_assert!(*claimed <= cap, "tenant '{}' over quota", t.name);
            }
        }
        // The packing admits — now it must also prove clean end to end.
        let (_sim, _ctx, _server, fleet) = deploy_packed(&tenants);
        prop_assert!(fleet.isolation_report().diagnostics.is_empty());
        prop_assert_eq!(fleet.spec().tenants.len(), tenants.len());
    }
}

/// Satellite 3 (rejection half): an over-subscribed spec is refused
/// admission with a typed error naming both the tenant and the quota.
#[test]
fn oversubscribed_specs_rejected_with_typed_error_naming_the_quota() {
    let geometry = NicGeometry {
        ports: 2,
        pus_per_port: 8,
    };
    // PU quota: 3 recycled get clients demand 6 PUs, capped at 4.
    let pu_hog = vec![TenantSpec::new("pu-hog")
        .with_gets(3, 4, HashGetVariant::Sequential, true)
        .with_quotas(TenantQuotas {
            pus: Some(4),
            ..TenantQuotas::default()
        })];
    let err = TenantPacker::new(geometry).pack(&pu_hog).unwrap_err();
    assert_eq!(
        err,
        PackError::QuotaExceeded {
            tenant: "pu-hog".to_string(),
            quota: "pus",
            demand: 6,
            cap: 4,
        }
    );
    // Ring-slot quota: 2 clients x depth 8 floor 16 slots, capped at 10.
    let ring_hog = vec![TenantSpec::new("ring-hog")
        .with_gets(2, 8, HashGetVariant::Sequential, true)
        .with_quotas(TenantQuotas {
            ring_slots: Some(10),
            ..TenantQuotas::default()
        })];
    let err = TenantPacker::new(geometry).pack(&ring_hog).unwrap_err();
    assert_eq!(
        err,
        PackError::QuotaExceeded {
            tenant: "ring-hog".to_string(),
            quota: "ring_slots",
            demand: 16,
            cap: 10,
        }
    );
    // The rnic error it converts to keeps both names.
    let msg = rnic_sim::error::Error::from(err).to_string();
    assert!(
        msg.contains("ring-hog") && msg.contains("ring_slots"),
        "{msg}"
    );
}

/// Satellite 4: the noisy-neighbor regression. Tenant A is driven at
/// 4x or more of its rate cap next to an unpaced tenant B on shared
/// PUs; credit pacing must confine the overload to A — B's p99 stays
/// within 1.5x its solo run and its throughput within 10%.
#[test]
fn noisy_neighbor_overload_stays_confined_to_the_noisy_tenant() {
    let mut cfg = redn_bench::tenantbench::TenantSweepConfig::small();
    cfg.ops_per_client = 80;
    let p = redn_bench::tenantbench::noisy_neighbor_point(&cfg).unwrap();
    assert!(
        p.demand_x_cap >= 4.0,
        "A demanded only {:.2}x its cap",
        p.demand_x_cap
    );
    assert!(p.a_shed_posts > 0, "A's pacer never engaged");
    assert!(
        p.p99_ratio <= 1.5,
        "B's p99 degraded {:.2}x solo (> 1.5x)",
        p.p99_ratio
    );
    assert!(
        p.tput_ratio >= 0.9,
        "B's throughput fell to {:.2}x solo (< 0.9x)",
        p.tput_ratio
    );
}

fn run_pair(a: &str, b: &str) -> FleetStats {
    let tenants = vec![
        TenantSpec::new(a).with_gets(1, 4, HashGetVariant::Sequential, true),
        TenantSpec::new(b).with_gets(1, 4, HashGetVariant::Sequential, true),
    ];
    let (mut sim, mut ctx, _server, mut fleet) = deploy_packed(&tenants);
    fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), 30, 4)
        .unwrap()
}

/// Satellite 2: merging two packed fleets' stats unions the per-tenant
/// slices — shared tenants' slices merge count-weighted (latency
/// distributions included), disjoint tenants pass through — without
/// dropping anything from the aggregate.
#[test]
fn merge_unions_per_tenant_slices_across_packed_fleets() {
    let one = run_pair("alpha", "beta");
    let two = run_pair("beta", "gamma");
    let merged = one.merge(&two);
    assert_eq!(merged.ops, one.ops + two.ops);
    assert_eq!(merged.per_tenant.len(), 3, "alpha, beta (merged), gamma");
    let slice = |name: &str| {
        merged
            .per_tenant
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("missing tenant '{name}'"))
    };
    let beta_one = one.per_tenant.iter().find(|t| t.tenant == "beta").unwrap();
    let beta_two = two.per_tenant.iter().find(|t| t.tenant == "beta").unwrap();
    let beta = slice("beta");
    assert_eq!(beta.ops, beta_one.ops + beta_two.ops);
    // The merged distribution is count-weighted, not dropped: it stays
    // within the two runs' envelope.
    let (l1, l2, lm) = (
        beta_one.latency.unwrap(),
        beta_two.latency.unwrap(),
        beta.latency.unwrap(),
    );
    assert!(lm.p99_us >= l1.p99_us.min(l2.p99_us) - 1e-9);
    assert!(lm.p99_us <= l1.p99_us.max(l2.p99_us) + 1e-9);
    assert_eq!(slice("alpha").ops, 30);
    assert_eq!(slice("gamma").ops, 30);
    assert_eq!(
        merged.per_tenant.iter().map(|t| t.ops).sum::<u64>(),
        merged.ops
    );
}
