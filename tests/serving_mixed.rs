//! Heterogeneous-fleet coverage (ISSUE-4): hash-get and list-walk
//! services deployed side by side on one simulated NIC, driven through
//! typed sessions, completing correctly — plus a proptest round-trip
//! for the list-node payload encoding the walk offload consumes.

use proptest::prelude::*;
use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::core::offloads::list::{encode_node, NODE_HEADER};
use redn::kv::liststore::ListStore;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{FleetSpec, ServiceSpec, ServingFleet};
use redn::kv::session::{Completion, Session, SessionOpts};
use redn::kv::workload::Workload;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::sim::Simulator;

fn stand_up(nkeys: u64) -> (Simulator, NodeId, MemcachedServer, ListStore, OffloadCtx) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, nkeys).unwrap();
    let store = ListStore::create(&mut sim, s, 16, 4, 64, ProcessId(0)).unwrap();
    let ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    (sim, c, server, store, ctx)
}

/// Gets and walks complete side by side on one simulator through a
/// heterogeneous fleet, with zero steady-state host involvement for
/// both self-recycling families.
#[test]
fn mixed_fleet_completes_gets_and_walks_side_by_side() {
    const NKEYS: u64 = 512;
    const OPS_PER_CLIENT: u64 = 60;
    let (mut sim, c, server, store, mut ctx) = stand_up(NKEYS);
    let spec = FleetSpec::new(vec![
        ServiceSpec::gets(2, 4, HashGetVariant::Sequential, true),
        ServiceSpec::walks(2, 4, store.nodes_per_list, true),
    ]);
    let workloads = Workload::split_sequential(NKEYS, 2);
    let mut fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        c,
        spec,
        workloads,
    )
    .unwrap();
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 4)
        .unwrap();
    assert_eq!(stats.ops, 4 * OPS_PER_CLIENT);
    assert_eq!(stats.get_ops, 2 * OPS_PER_CLIENT, "every get completes");
    assert_eq!(stats.walk_ops, 2 * OPS_PER_CLIENT, "every walk completes");
    assert_eq!(stats.timeouts, 0, "hit-only mixed workload");
    assert_eq!(stats.host_arm_calls, 0, "both families self-recycle");
    assert_eq!(stats.get_arm_calls, 0);
    assert_eq!(stats.walk_arm_calls, 0);
    assert_eq!(stats.server_doorbells, 0, "no server MMIO in steady state");
    assert_eq!(stats.server_posts, 0, "no server posts in steady state");
    assert!(stats.latency.is_some(), "latencies recorded across the mix");
}

/// Value correctness across the mix: one get session and one walk
/// session interleave bursts on one simulator; every completion's value
/// lands in the right slot with the right tag byte.
#[test]
fn mixed_sessions_interleave_with_correct_values() {
    let (mut sim, c, server, store, mut ctx) = stand_up(64);
    let opts = SessionOpts {
        pipeline_depth: 4,
        self_recycling: true,
        ..SessionOpts::default()
    };
    let mut gets = Session::connect_get(
        &mut sim,
        &mut ctx,
        &server,
        c,
        HashGetVariant::Sequential,
        opts,
    )
    .unwrap();
    let mut walks = Session::connect_walk(
        &mut sim,
        &mut ctx,
        &store,
        c,
        store.nodes_per_list,
        SessionOpts { pu_base: 2, ..opts },
    )
    .unwrap();

    let get_keys = [5u64, 21, 48, 60];
    let walk_reqs: Vec<(u64, u64)> = (0..4u64)
        .map(|l| (store.head(l), store.key_of(l, (l % 4) as usize)))
        .collect();
    // Interleave: two gets, the walks, the remaining gets — one
    // simulator carries both families at once.
    let mut get_pending = gets.get_burst(&mut sim, &get_keys[..2]).unwrap();
    let walk_pending = walks.walk_burst(&mut sim, &walk_reqs).unwrap();
    get_pending.extend(gets.get_burst(&mut sim, &get_keys[2..]).unwrap());
    sim.run().unwrap();

    let get_done = gets.reap(&mut sim, 16);
    assert_eq!(get_done.len(), 4, "all gets respond");
    for done in &get_done {
        assert!(matches!(done, Completion::Get(_)));
        let p = get_pending
            .iter()
            .find(|p| gets.response_tag(p.instance) == done.tag())
            .expect("get completion matches");
        assert_eq!(
            gets.read_value(&sim, p.instance, 1).unwrap()[0],
            (p.key & 0xFF) as u8
        );
        gets.complete();
    }
    let walk_done = walks.reap(&mut sim, 16);
    assert_eq!(walk_done.len(), 4, "all walks respond");
    for done in &walk_done {
        assert!(matches!(done, Completion::Walk(_)));
        let p = walk_pending
            .iter()
            .find(|p| walks.response_tag(p.instance) == done.tag())
            .expect("walk completion matches");
        assert_eq!(
            walks.read_value(&sim, p.instance, 1).unwrap()[0],
            (p.key & 0xFF) as u8
        );
        walks.complete();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode_node is a faithful round-trip for every field the walk
    /// offload reads: the next pointer, the 48-bit key (the offload's
    /// operand width), and the value bytes.
    #[test]
    fn encode_node_round_trips(
        next in any::<u64>(),
        key in 1u64..(1 << 48),
        value in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let bytes = encode_node(next, key, &value);
        prop_assert_eq!(bytes.len(), NODE_HEADER as usize + value.len());
        let got_next = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        prop_assert_eq!(got_next, next);
        let mut k = [0u8; 8];
        k[..6].copy_from_slice(&bytes[8..14]);
        prop_assert_eq!(u64::from_le_bytes(k), key & 0xFFFF_FFFF_FFFF);
        prop_assert_eq!(&bytes[8..14], &key.to_le_bytes()[..6]);
        prop_assert_eq!(&bytes[14..16], &[0u8, 0u8]);
        prop_assert_eq!(&bytes[NODE_HEADER as usize..], &value[..]);
    }
}
