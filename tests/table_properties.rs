//! Property tests: the cuckoo and hopscotch tables against a HashMap
//! model, including the invariant the offload depends on — every resident
//! key is findable by probing only its two candidate buckets.

use proptest::prelude::*;
use redn::kv::cuckoo::CuckooTable;
use redn::kv::hopscotch::HopscotchTable;
use redn::prelude::*;
use rnic_sim::config::SimConfig;
use rnic_sim::ids::ProcessId;
use std::collections::HashMap;

fn sim_node() -> (Simulator, rnic_sim::ids::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let n = sim.add_node("s", HostConfig::default(), NicConfig::connectx5());
    (sim, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cuckoo_agrees_with_hashmap_model(
        ops in prop::collection::vec((1u64..500, 0u8..255), 1..120),
    ) {
        let (mut sim, n) = sim_node();
        let mut table = CuckooTable::create(&mut sim, n, 1024, 16, ProcessId(0)).unwrap();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (key, tag) in ops {
            if table.insert(&mut sim, key, &[tag; 16]).unwrap() {
                model.insert(key, tag);
            }
        }
        for (key, tag) in &model {
            let slot = table.lookup(*key);
            prop_assert!(slot.is_some(), "key {key} lost");
            let v = table.heap.read_value(&sim, slot.unwrap(), 1).unwrap();
            prop_assert_eq!(v[0], *tag, "key {} value", key);
            // The 2-probe invariant the RedN offload relies on.
            prop_assert!(table.holding_candidate(*key).is_some());
        }
        // Absent keys stay absent.
        for key in 600u64..620 {
            prop_assert!(table.lookup(key).is_none());
        }
    }

    #[test]
    fn hopscotch_bucket_bytes_always_decode(
        keys in prop::collection::btree_set(1u64..300, 1..40),
    ) {
        let (mut sim, n) = sim_node();
        let mut table = HopscotchTable::create(&mut sim, n, 512, 16, ProcessId(0)).unwrap();
        let mut stored = Vec::new();
        for key in keys {
            if let Some(idx) = table.insert(&mut sim, key, &[1; 16]).unwrap() {
                stored.push((key, idx));
            }
        }
        // Every stored bucket decodes to (ptr into the heap, the key).
        for (key, idx) in stored {
            let b = sim
                .mem_read(n, table.bucket_addr(idx), 16)
                .unwrap();
            let ptr = u64::from_le_bytes(b[0..8].try_into().unwrap());
            let mut kb = [0u8; 8];
            kb[..6].copy_from_slice(&b[8..14]);
            prop_assert_eq!(u64::from_le_bytes(kb), key);
            prop_assert!(ptr >= table.heap.base);
        }
    }
}

#[test]
fn cuckoo_update_in_place_does_not_grow() {
    let (mut sim, n) = sim_node();
    let mut table = CuckooTable::create(&mut sim, n, 256, 16, ProcessId(0)).unwrap();
    for _ in 0..10 {
        assert!(table.insert(&mut sim, 42, &[7; 16]).unwrap());
    }
    assert_eq!(table.len(), 1);
}
