//! Seeded-hazard corpus for `redn_core::ir::analysis`: one negative
//! test per analysis rule — each asserting the diagnostic names the
//! offending op(s) — plus positives proving every shipped offload
//! family deploys through the full pass suite with zero diagnostics.

use redn::core::ctx::{ChainQueueBuilder, ClientDest, OffloadCtx, TableRegion, ValueSource};
use redn::core::encode::WqeField;
use redn::core::ir::analysis::{self, DeploymentVerifier};
use redn::core::ir::{EnableTarget, IrProgram, Kind, Loc, OpBuild, RingSpec, WaitCond};
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::core::program::ConstPool;
use redn::kv::liststore::ListStore;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{FleetSpec, ServiceSpec, ServingFleet};
use redn::kv::workload::Workload;
use redn_cluster::cluster::{Cluster, ClusterSpec};
use redn_cluster::session::ClusterSession;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::mem::Access;
use rnic_sim::sim::Simulator;

fn rig() -> (Simulator, NodeId, ConstPool) {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("s", HostConfig::default(), NicConfig::connectx5());
    let pool = ConstPool::create(&mut sim, node, 1 << 16, ProcessId(0)).unwrap();
    (sim, node, pool)
}

fn serving_rig() -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let server = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(client, server, LinkConfig::back_to_back());
    (sim, client, server)
}

// ---------------------------------------------------------------- //
// Negative: one seeded program per rule family.                    //
// ---------------------------------------------------------------- //

/// Two externally-enabled queues whose WAITs each gate on the *other*
/// queue's op — a circular wait no completion can ever break. The PR 5
/// verifier's local rules all pass; only the happens-before graph sees
/// the cycle.
#[test]
fn seeded_wait_cycle_is_rejected_naming_both_waits() {
    let (mut sim, node, mut pool) = rig();
    let qa = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let qb = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();

    let mut p = IrProgram::linear();
    let a = p.chain(qa);
    let b = p.chain(qb);
    p.external_enable(a);
    p.external_enable(b);
    let wa = p.alloc(a); // forward ref: a's WAIT gates on b's, and vice versa
    let wb = p.push(
        b,
        OpBuild::new(Kind::Wait(WaitCond::OpDonePosted(wa))).label("wait-in-b"),
    );
    p.place(
        wa,
        OpBuild::new(Kind::Wait(WaitCond::OpDonePosted(wb))).label("wait-in-a"),
    );

    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the analyzer must reject the circular wait"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("wait-cycle"), "{msg}");
    assert!(msg.contains("circular wait"), "{msg}");
    assert!(msg.contains("wait-in-a"), "{msg}");
    assert!(msg.contains("wait-in-b"), "{msg}");
}

/// An ENABLE staged *behind* a WAIT that gates on the very op the
/// ENABLE must release: the horizon can never rise. Passes PR 5's
/// reachability rule (the ENABLE does cover the op) — the hazard is
/// ordering, visible only as a happens-before cycle through the
/// release edge.
#[test]
fn seeded_unraisable_horizon_is_rejected() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let gated = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let gated_q = p.chain(gated);
    let op = p.push(
        gated_q,
        OpBuild::new(Kind::Noop).signaled().label("gated op"),
    );
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Wait(WaitCond::OpDoneSignaled(op))).label("premature wait"),
    );
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(op))).label("late enable"),
    );

    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the analyzer must reject the un-raisable horizon"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("unraisable-horizon"), "{msg}");
    assert!(msg.contains("late enable"), "{msg}");
}

/// A recycled ring whose per-round ENABLE bump is smaller than the ops
/// the target queue re-executes per round: the inductive threshold
/// invariant fails — after one cycle the horizon lags the ops it must
/// release. (PR 5's monotonicity rule only demands *a* bump; the
/// analyzer checks its value.)
#[test]
fn seeded_recycled_induction_failure_is_rejected() {
    let (mut sim, node, mut pool) = rig();
    let worker = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let (mut p, ring) = IrProgram::recycled(RingSpec {
        node,
        owner: ProcessId(0),
        pu: None,
        port: 0,
    });
    let wq = p.chain(worker);
    p.push(wq, OpBuild::new(Kind::Noop).signaled().label("round op 1"));
    let last = p.push(wq, OpBuild::new(Kind::Noop).signaled().label("round op 2"));
    p.push(
        ring,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(last)))
            .bump(1) // the queue runs 2 ops per round
            .label("short bump"),
    );

    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the analyzer must reject the short bump"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("recycled-induction"), "{msg}");
    assert!(msg.contains("short bump"), "{msg}");
    assert!(msg.contains("2 ops per round"), "{msg}");
}

/// A runtime patch that rewrites a WRITE's remote address to one past
/// the end of its registered region. The staged operand is a legal
/// placeholder; only constant-folding the patch value exposes the
/// out-of-bounds dereference — before the NIC performs it.
#[test]
fn seeded_out_of_bounds_post_patch_write_is_rejected() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let victim = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let data = sim.alloc(node, 64, 8).unwrap();
    let region = sim.register_mr(node, data, 64, Access::all()).unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let victim_q = p.chain(victim);
    p.external_enable(victim_q);
    let payload = p.const_bytes(vec![0xAB; 8]);
    let target = p.push(
        victim_q,
        OpBuild::new(Kind::Write {
            src: Loc::cst(payload),
            len: 8,
            dst: Loc::raw(region.addr, region.rkey), // in-bounds as staged
            imm: None,
        })
        .signaled()
        .label("patched writer"),
    );
    // The patch lands one byte past the region's end.
    let bad_addr = p.const_bytes((region.addr + region.len).to_le_bytes().to_vec());
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Write {
            src: Loc::cst(bad_addr),
            len: 8,
            dst: Loc::field(target, WqeField::RemoteAddr),
            imm: None,
        })
        .signaled()
        .label("oob patcher"),
    );

    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the analyzer must reject the post-patch overrun"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("out-of-bounds post-patch WRITE"), "{msg}");
    assert!(msg.contains("oob patcher"), "{msg}");
    assert!(msg.contains("patched writer"), "{msg}");
}

/// Two self-recycling hash-get rings answering into the *same* client
/// response buffer: each deploys clean in isolation, but their response
/// slots alias — the tenant-isolation violation the
/// [`DeploymentVerifier`] exists for.
#[test]
fn seeded_rings_aliasing_a_response_slot_are_flagged() {
    let (mut sim, client, server) = serving_rig();
    let table = sim.alloc(server, 8 * 16, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, 8 * 16, Access::all())
        .unwrap();
    let values = sim.alloc(server, 8 * 64, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, 8 * 64, Access::all())
        .unwrap();
    let resp = sim.alloc(client, 8 * 8, 8).unwrap();
    let rmr = sim.register_mr(client, resp, 8 * 8, Access::all()).unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 20, ProcessId(0)).unwrap();
    let deploy = |sim: &mut Simulator, pool: &mut ConstPool, port: usize| {
        ctx.hash_get()
            .table(TableRegion::of(&tmr))
            .values(ValueSource::of(&vmr, 8))
            .respond_to(ClientDest::of(&rmr)) // the SAME client slots
            .variant(HashGetVariant::Single)
            .pipeline_depth(4)
            .on_port(port)
            .build_recycled(sim, pool)
            .unwrap()
    };
    let a = deploy(&mut sim, &mut pool, 0);
    let b = deploy(&mut sim, &mut pool, 1);

    let mut v = DeploymentVerifier::new("seeded");
    v.add(a.footprint().unwrap().clone().named("ring-a"));
    v.add(b.footprint().unwrap().clone().named("ring-b"));
    let report = v.verify();
    assert!(!report.clean(), "aliased response slots must be flagged");
    let d = &report.diagnostics[0];
    assert_eq!(d.rule.name(), "interference");
    assert!(d.message.contains("ring-a"), "{}", d.message);
    assert!(d.message.contains("ring-b"), "{}", d.message);
    assert!(d.message.contains("response slot"), "{}", d.message);
    // The report renders for the CI gate.
    let json = report.to_json();
    assert!(json.contains("\"clean\":false"), "{json}");
    assert!(json.contains("\"rule\":\"interference\""), "{json}");
}

// ---------------------------------------------------------------- //
// Positive: every shipped family is proven clean.                  //
// ---------------------------------------------------------------- //

/// A correct ENABLE→WAIT chain analyzes clean, with a non-trivial
/// happens-before graph and bounds checks actually performed.
#[test]
fn clean_program_reports_hb_stats_and_zero_diagnostics() {
    let (mut sim, node, _pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let worker = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let data = sim.alloc(node, 64, 8).unwrap();
    let region = sim.register_mr(node, data, 64, Access::all()).unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let worker_q = p.chain(worker);
    let c = p.const_bytes(7u64.to_le_bytes().to_vec());
    let w = p.push(
        worker_q,
        OpBuild::new(Kind::Write {
            src: Loc::cst(c),
            len: 8,
            dst: Loc::raw(region.addr, region.rkey),
            imm: None,
        })
        .signaled()
        .label("worker write"),
    );
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(w))).label("enable"),
    );
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Wait(WaitCond::OpDoneSignaled(w))).label("join"),
    );

    let report = analysis::analyze(&p, &sim, "clean-demo");
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(report.hb_nodes, 6);
    assert!(report.hb_edges >= 6, "edges: {}", report.hb_edges);
    assert!(report.checked >= 2, "checked: {}", report.checked);
    assert!(report.to_json().contains("\"clean\":true"));
}

/// Every serving family — both hash-get modes (self-recycling Single +
/// Sequential, host-armed Parallel) and both list-walk modes — deploys
/// through the analyzer with zero diagnostics, and the co-resident
/// fleet proves pairwise non-interference. The closed loop then drives
/// the host-armed services through `arm`, whose per-instance programs
/// pass the same suite.
#[test]
fn shipped_fleet_passes_analyzer_and_isolation() {
    let (mut sim, client, server_node) = serving_rig();
    let server = MemcachedServer::create(&mut sim, server_node, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, 512).unwrap();
    let store = ListStore::create(&mut sim, server_node, 4, 4, 32, ProcessId(0)).unwrap();
    let mut ctx = OffloadCtx::builder(server_node)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    let spec = FleetSpec::new(vec![
        ServiceSpec::gets(1, 4, HashGetVariant::Single, true),
        ServiceSpec::gets(1, 4, HashGetVariant::Sequential, true),
        ServiceSpec::gets(1, 4, HashGetVariant::Parallel, false),
        ServiceSpec::walks(1, 4, 4, true),
        ServiceSpec::walks(1, 4, 4, false),
    ]);
    let workloads = Workload::split_sequential(512, spec.get_clients());
    let mut fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        client,
        spec,
        workloads,
    )
    .unwrap();
    let report = fleet.isolation_report();
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(report.programs, 3, "three self-recycling footprints");
    assert_eq!(report.checked, 3, "three pairs compared");
    // Host-armed services stage (and re-analyze) per-instance programs.
    fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), 8, 2)
        .unwrap();
}

/// The sharded cluster — per-shard self-recycling hash-get rings plus
/// NIC-resident replication chains journaling onto neighbor nodes —
/// passes the cluster-wide isolation proof at connect.
#[test]
fn cluster_connect_proves_isolation() {
    let (mut sim, mut cluster) = Cluster::deploy(ClusterSpec::small()).unwrap();
    let session = ClusterSession::connect(
        &mut sim,
        &mut cluster,
        redn::kv::session::SessionOpts::default(),
    )
    .unwrap();
    let report = session.isolation_report();
    assert!(report.clean(), "{:?}", report.diagnostics);
    assert_eq!(
        report.programs, 8,
        "one get ring + one replication chain per shard"
    );
    assert_eq!(report.checked, 8 * 7 / 2, "all pairs compared");
}

/// The Appendix A Turing ring — the analyzer's hardest customer
/// (multi-slot trigger WRITEs, post-patch operands, a self-enabling
/// ring) — compiles through `deploy` with the full suite on, and still
/// runs to the correct halt.
#[test]
fn turing_ring_passes_the_analyzer_and_halts() {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::new(&mut sim, node).unwrap();
    let tm = redn::core::turing::machine::TuringMachine::busy_beaver_2();
    let compiled = ctx.compile_tm(&mut sim, &tm, &[0u32; 9], 4).unwrap();
    sim.run().unwrap();
    assert!(compiled.halted(&sim).unwrap());
}

/// The const-pool high-water mark surfaces through [`PassReport`], so
/// the analyzer's bounds proofs and `FleetStats` account the same pool
/// numbers.
///
/// [`PassReport`]: redn::core::ir::PassReport
#[test]
fn pass_report_carries_the_pool_high_water_mark() {
    let (mut sim, client, server) = serving_rig();
    let table = sim.alloc(server, 8 * 16, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, 8 * 16, Access::all())
        .unwrap();
    let values = sim.alloc(server, 8 * 64, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, 8 * 64, Access::all())
        .unwrap();
    let resp = sim.alloc(client, 8 * 8, 8).unwrap();
    let rmr = sim.register_mr(client, resp, 8 * 8, Access::all()).unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 18, ProcessId(0)).unwrap();
    let off = ctx
        .hash_get()
        .table(TableRegion::of(&tmr))
        .values(ValueSource::of(&vmr, 8))
        .respond_to(ClientDest::of(&rmr))
        .variant(HashGetVariant::Single)
        .pipeline_depth(4)
        .build_recycled(&mut sim, &mut pool)
        .unwrap();
    let rep = off.ir_report().unwrap();
    assert!(rep.pool_high_water > 0, "constants were placed");
    assert!(
        rep.pool_high_water <= pool.high_water(),
        "report ({}) cannot exceed the live pool ({})",
        rep.pool_high_water,
        pool.high_water()
    );
}
