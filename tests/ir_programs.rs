//! The `redn_core::ir` layer, exercised end to end: the static verifier's
//! three rule families on hand-built programs (including the seeded §3.1
//! hazard), and the golden optimized WQE counts of the shipped offloads.

use redn::core::ctx::{ChainQueueBuilder, ClientDest, OffloadCtx, TableRegion, ValueSource};
use redn::core::ir::{DeployOpts, EnableTarget, IrProgram, Kind, Loc, OpBuild, RingSpec, WaitCond};
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::core::program::ConstPool;
use rnic_sim::config::{HostConfig, NicConfig, SimConfig};
use rnic_sim::ids::{CqId, NodeId, ProcessId};
use rnic_sim::mem::Access;
use rnic_sim::sim::Simulator;

fn rig() -> (Simulator, NodeId, ConstPool) {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("s", HostConfig::default(), NicConfig::connectx5());
    let pool = ConstPool::create(&mut sim, node, 1 << 16, ProcessId(0)).unwrap();
    (sim, node, pool)
}

/// The seeded §3.1 hazard: a CAS patches a WQE that lives on an
/// *unmanaged* queue — the NIC may prefetch the target past its fetch
/// horizon before the patch lands. The verifier must reject the program
/// with a diagnostic naming the offending WQE.
#[test]
fn seeded_section_3_1_hazard_is_rejected_naming_the_wqe() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    // The victim queue is UNMANAGED: it prefetches from its doorbell.
    let victim_q = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let victim = p.chain(victim_q);
    let target = p.push(
        victim,
        OpBuild::new(Kind::Noop)
            .signaled()
            .placeholder()
            .label("prefetched victim"),
    );
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Transmute {
            target,
            y: 7,
            into: rnic_sim::verbs::Opcode::Write,
        })
        .signaled()
        .label("hazardous CAS"),
    );

    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the verifier must reject the §3.1 hazard"),
    };
    let msg = format!("{err}");
    assert!(
        msg.contains("\u{a7}3.1"),
        "diagnostic names the rule: {msg}"
    );
    assert!(
        msg.contains("prefetched victim"),
        "diagnostic names the offending WQE: {msg}"
    );
    assert!(
        msg.contains("hazardous CAS"),
        "diagnostic names the patcher: {msg}"
    );
    assert!(msg.contains("UNMANAGED"), "{msg}");
}

/// The same program on a *managed* victim queue (with the target covered
/// by an ENABLE) passes verification.
#[test]
fn managed_patch_target_passes_the_verifier() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let victim_q = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let victim = p.chain(victim_q);
    let target = p.push(victim, OpBuild::new(Kind::Noop).signaled().placeholder());
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Transmute {
            target,
            y: 7,
            into: rnic_sim::verbs::Opcode::Write,
        })
        .signaled(),
    );
    p.push(ctrl_q, OpBuild::new(Kind::Wait(WaitCond::LocalAllSignaled)));
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(target))),
    );
    assert!(p.deploy(&mut sim, &mut pool).is_ok());
}

/// An op on a managed queue never covered by any ENABLE horizon would
/// park the queue forever — rejected, naming the first unreachable WQE.
#[test]
fn unreachable_enable_target_is_rejected() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let managed = ChainQueueBuilder::new(node, ProcessId(0))
        .managed()
        .depth(32)
        .build(&mut sim)
        .unwrap();

    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let act_q = p.chain(managed);
    let first = p.push(act_q, OpBuild::new(Kind::Noop).signaled().label("covered"));
    p.push(act_q, OpBuild::new(Kind::Noop).signaled().label("orphan"));
    // Only the first op is ever enabled.
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Enable(EnableTarget::OpsThrough(first))),
    );
    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the verifier must reject the unreachable op"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("unreachable ENABLE"), "{msg}");
    assert!(msg.contains("orphan"), "{msg}");
}

/// A WAIT in a recycled ring with an absolute threshold and no per-round
/// bump is non-monotonic across ring cycles — round 2 would reuse round
/// 1's count. Rejected, naming the WQE.
#[test]
fn non_monotonic_recycled_wait_is_rejected() {
    let (mut sim, node, mut pool) = rig();
    let (mut p, ring) = IrProgram::recycled(RingSpec {
        node,
        owner: ProcessId(0),
        pu: None,
        port: 0,
    });
    p.push(
        ring,
        OpBuild::new(Kind::Wait(WaitCond::Absolute {
            cq: CqId(0),
            count: 1,
        }))
        .label("stale wait"), // no .bump(...)
    );
    p.push(ring, OpBuild::new(Kind::Noop).signaled());
    let err = match p.deploy(&mut sim, &mut pool) {
        Err(e) => e,
        Ok(_) => panic!("the verifier must reject the unbumped ring WAIT"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("non-monotonic WAIT"), "{msg}");
    assert!(msg.contains("stale wait"), "{msg}");
}

/// `deploy_unchecked` is the escape hatch: the same seeded hazard lowers
/// (the caller owns the consequences). Waived rule here: the §3.1
/// fetch-horizon family (a Transmute patch targeting an unmanaged
/// queue); the analysis suite is waived along with it.
#[test]
fn deploy_unchecked_skips_the_verifier() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let victim_q = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let victim = p.chain(victim_q);
    let target = p.push(victim, OpBuild::new(Kind::Noop).signaled().placeholder());
    p.push(
        ctrl_q,
        OpBuild::new(Kind::Transmute {
            target,
            y: 7,
            into: rnic_sim::verbs::Opcode::Write,
        })
        .signaled(),
    );
    assert!(p.deploy_unchecked(&mut sim, &mut pool).is_ok());
}

/// Constant-pool deduplication: identical immutable constants intern to
/// one cell; mutable (zeroed) cells never do.
#[test]
fn const_dedup_interns_identical_bytes() {
    let (mut sim, node, mut pool) = rig();
    let ctrl = ChainQueueBuilder::new(node, ProcessId(0))
        .depth(32)
        .build(&mut sim)
        .unwrap();
    let mut p = IrProgram::linear();
    let ctrl_q = p.chain(ctrl);
    let a = p.const_bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]);
    let b = p.const_bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]); // identical
    let z1 = p.const_zeroed(8);
    let z2 = p.const_zeroed(8); // mutable: never deduped
                                // Reference them so the program is non-trivial.
    for c in [a, b] {
        p.push(
            ctrl_q,
            OpBuild::new(Kind::Write {
                src: Loc::cst(c),
                len: 8,
                dst: Loc::cst(z1),
                imm: None,
            })
            .signaled(),
        );
    }
    let ra = p.const_ref(a);
    let rb = p.const_ref(b);
    let r1 = p.const_ref(z1);
    let r2 = p.const_ref(z2);
    let lowered = p.deploy(&mut sim, &mut pool).unwrap();
    assert_eq!(ra.addr(), rb.addr(), "identical bytes intern to one cell");
    assert_ne!(r1.addr(), r2.addr(), "zeroed cells stay distinct");
    assert_eq!(lowered.report().const_bytes_saved, 8);
}

fn serving_rig() -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let server = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(client, server, rnic_sim::config::LinkConfig::back_to_back());
    (sim, client, server)
}

/// Golden WQE counts for the recycled hash-get round: a Single-probe
/// ring with `K` instances costs `8K + 6` WQEs per round naively
/// (including the K response placeholders and their per-slot restore
/// WRITEs) and `7K + 6` optimized (restores merged into one scatter
/// WRITE, tail WAIT elided).
#[test]
fn golden_verb_counts_recycled_hash_get() {
    let (mut sim, client, server) = serving_rig();
    let table = sim.alloc(server, 8 * 16, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, 8 * 16, Access::all())
        .unwrap();
    let values = sim.alloc(server, 8 * 64, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, 8 * 64, Access::all())
        .unwrap();
    let resp = sim.alloc(client, 8 * 8, 8).unwrap();
    let rmr = sim.register_mr(client, resp, 8 * 8, Access::all()).unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 18, ProcessId(0)).unwrap();
    let k = 8u64;
    let off = ctx
        .hash_get()
        .table(TableRegion::of(&tmr))
        .values(ValueSource::of(&vmr, 8))
        .respond_to(ClientDest::of(&rmr))
        .variant(HashGetVariant::Single)
        .pipeline_depth(k as u32)
        .build_recycled(&mut sim, &mut pool)
        .unwrap();
    let rep = off.ir_report().expect("recycled offloads carry a report");
    assert_eq!(rep.before.total() as u64, 8 * k + 6, "naive round");
    assert_eq!(rep.after.total() as u64, 7 * k + 6, "optimized round");
    assert_eq!(rep.restores_merged as u64, k - 1);
    assert_eq!(
        off.verbs_per_op().unwrap(),
        (7 * k + 6) as f64 / k as f64,
        "optimized WQEs per request"
    );
}

/// Golden WQE counts for the recycled list-walk round: `K` instances of
/// an `N`-node walk cost `K(4 + 4N) + 6` WQEs per round naively
/// (including the K*N response placeholders and their restores) and
/// `K(4 + 3N) + 6` optimized.
#[test]
fn golden_verb_counts_recycled_list_walk() {
    let (mut sim, client, server) = serving_rig();
    let nodes = sim.alloc(server, 4 * 80, 64).unwrap();
    let lmr = sim
        .register_mr(server, nodes, 4 * 80, Access::all())
        .unwrap();
    let resp = sim.alloc(client, 64 * 4, 8).unwrap();
    let rmr = sim
        .register_mr(client, resp, 64 * 4, Access::all())
        .unwrap();
    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 20, ProcessId(0)).unwrap();
    let (k, n) = (4u64, 4u64);
    let off = ctx
        .list_walk()
        .list(TableRegion::of(&lmr))
        .value_len(64)
        .respond_to(ClientDest::of(&rmr))
        .max_nodes(n as usize)
        .pipeline_depth(k as u32)
        .build_recycled(&mut sim, &mut pool)
        .unwrap();
    let rep = off.ir_report().expect("recycled offloads carry a report");
    assert_eq!(
        rep.before.total() as u64,
        k * (4 + 4 * n) + 6,
        "naive round"
    );
    assert_eq!(
        rep.after.total() as u64,
        k * (4 + 3 * n) + 6,
        "optimized round"
    );
    assert_eq!(rep.restores_merged as u64, k * n - 1);
    assert_eq!(
        off.verbs_per_op().unwrap(),
        (k * (4 + 3 * n) + 6) as f64 / k as f64
    );
}

/// Golden WQE counts for one Turing-machine step (the third committed
/// baseline): `R` rules lower to `4R + 29` naively and `3R + 20`
/// optimized — see `redn_core::turing::compile` for the breakdown.
#[test]
fn golden_verb_counts_tm_step() {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("tm", HostConfig::default(), NicConfig::connectx5());
    let tm = redn::core::turing::machine::TuringMachine::busy_beaver_2();
    let compiled = redn::core::turing::compile::CompiledTm::compile(
        &mut sim,
        node,
        ProcessId(0),
        &tm,
        &[0; 9],
        4,
    )
    .unwrap();
    let r = tm.rules.len();
    assert_eq!(compiled.report.before.total(), 4 * r + 29);
    assert_eq!(compiled.report.after.total(), 3 * r + 20);
}

/// The unoptimized lowering must still serve correctly (spot check; the
/// equivalence property tests cover randomized workloads).
#[test]
fn unoptimized_recycled_hash_get_still_serves() {
    use redn::core::offloads::hash_lookup::{encode_bucket, BUCKET_SIZE};
    use rnic_sim::qp::QpConfig;
    use rnic_sim::wqe::WorkRequest;

    let (mut sim, client, server) = serving_rig();
    let table = sim.alloc(server, 8 * BUCKET_SIZE, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, 8 * BUCKET_SIZE, Access::all())
        .unwrap();
    let values = sim.alloc(server, 8 * 64, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, 8 * 64, Access::all())
        .unwrap();
    sim.mem_write_u64(server, values, 0xFEED).unwrap();
    let b = encode_bucket(values, 0xFACE);
    sim.mem_write(server, table + 3 * BUCKET_SIZE, &b).unwrap();

    let resp = sim.alloc(client, 64, 8).unwrap();
    let rmr = sim.register_mr(client, resp, 64, Access::all()).unwrap();
    let csrc = sim.alloc(client, 64, 8).unwrap();
    let smr = sim.register_mr(client, csrc, 64, Access::all()).unwrap();
    let ccq = sim.create_cq(client, 64).unwrap();
    let crecv = sim.create_cq(client, 64).unwrap();
    let cqp = sim
        .create_qp(client, QpConfig::new(ccq).recv_cq(crecv))
        .unwrap();

    let ctx = OffloadCtx::builder(server).build(&mut sim).unwrap();
    let mut pool = ConstPool::create(&mut sim, server, 1 << 18, ProcessId(0)).unwrap();
    let mut off = ctx
        .hash_get()
        .table(TableRegion::of(&tmr))
        .values(ValueSource::of(&vmr, 8))
        .respond_to(ClientDest::of(&rmr))
        .variant(HashGetVariant::Single)
        .pipeline_depth(2)
        .build_recycled_with(
            &mut sim,
            &mut pool,
            DeployOpts {
                optimize: false,
                verify: true,
            },
        )
        .unwrap();
    let rep = off.ir_report().unwrap();
    assert_eq!(rep.before.total(), rep.after.total(), "no passes ran");
    sim.connect_qps(cqp, off.tp.qp).unwrap();

    let _ = off.take_instance().unwrap();
    sim.post_recv(cqp, WorkRequest::recv(0, 0, 0)).unwrap();
    let payload = off.client_payload(0xFACE, &[table + 3 * BUCKET_SIZE]);
    sim.mem_write(client, csrc, &payload).unwrap();
    sim.post_send(cqp, WorkRequest::send(csrc, smr.lkey, payload.len() as u32))
        .unwrap();
    sim.run().unwrap();
    assert_eq!(sim.poll_cq(crecv, 4).len(), 1);
    assert_eq!(sim.mem_read_u64(client, resp).unwrap(), 0xFEED);
}
