//! End-to-end coverage of the fluent `OffloadCtx` deployment API: the
//! hash-get offload deployed entirely through the context (typed
//! capabilities, no raw keys), exercised against both of the paper's
//! baselines — mirroring `examples/kv_offload.rs`.

use redn::core::ctx::{ClientDest, OffloadCtx, TableRegion, ValueSource};
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::baselines::{two_sided_get, ClientEndpoint, OneSidedClient, TwoSidedMode};
use redn::kv::hopscotch::HopscotchTable;
use redn::kv::memcached::{redn_get, MemcachedServer};
use redn::prelude::*;
use rnic_sim::config::{LinkConfig, SimConfig};
use rnic_sim::ids::ProcessId;

fn testbed() -> (Simulator, rnic_sim::ids::NodeId, rnic_sim::ids::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    (sim, c, s)
}

#[test]
fn hash_get_deployed_via_ctx_round_trips_against_baselines() {
    let (mut sim, client, server) = testbed();

    // A Memcached-like store with 100 keys of 64 B values.
    let mc = MemcachedServer::create(&mut sim, server, 1024, 64, ProcessId(0)).unwrap();
    mc.populate(&mut sim, 100).unwrap();
    sim.set_runnable_threads(server, 1);

    // RedN frontend, deployed through the fluent context.
    let ep = ClientEndpoint::create(&mut sim, client, 64).unwrap();
    let mut ctx = OffloadCtx::builder(server)
        .owner(ProcessId(0))
        .pool_capacity(1 << 20)
        .build(&mut sim)
        .unwrap();
    let mut off = mc
        .redn_frontend(&mut sim, &ctx, ep.dest(), HashGetVariant::Parallel)
        .unwrap();
    assert_eq!(off.variant(), HashGetVariant::Parallel);
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();
    let (redn_lat, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, 42).unwrap();
    assert!(found, "RedN get must hit");
    let redn_value = sim.mem_read(client, ep.resp_buf, 1).unwrap()[0];
    assert_eq!(redn_value, 42, "value round-trips through the NIC");

    // Two-sided VMA baseline on the same store.
    let vma = mc.two_sided_frontend(&mut sim, TwoSidedMode::Vma).unwrap();
    let ep2 = ClientEndpoint::create(&mut sim, client, 64).unwrap();
    sim.connect_qps(ep2.qp, vma.qp).unwrap();
    let (vma_lat, found) = two_sided_get(&mut sim, &ep2, 42).unwrap();
    assert!(found);
    assert_eq!(
        sim.mem_read(client, ep2.resp_buf, 1).unwrap()[0],
        redn_value
    );

    // One-sided baseline on a hopscotch table holding the same key.
    let mut hs = HopscotchTable::create(&mut sim, server, 1024, 64, ProcessId(0)).unwrap();
    hs.insert(&mut sim, 42, &[42u8; 64]).unwrap();
    let one = OneSidedClient::create(&mut sim, client, &hs).unwrap();
    let scq = sim.create_cq(server, 16).unwrap();
    let sqp = sim
        .create_qp(server, rnic_sim::qp::QpConfig::new(scq))
        .unwrap();
    sim.connect_qps(one.ep.qp, sqp).unwrap();
    let (one_lat, found) = one.get(&mut sim, 42, &hs.candidates(42)).unwrap();
    assert!(found);
    assert_eq!(
        sim.mem_read(client, one.ep.resp_buf, 1).unwrap()[0],
        redn_value
    );

    // The paper's Fig 14 ordering: RedN beats both baselines.
    assert!(
        redn_lat < one_lat && redn_lat < vma_lat,
        "RedN {redn_lat:?} must beat one-sided {one_lat:?} and VMA {vma_lat:?}"
    );
}

#[test]
fn ctx_hash_get_with_explicit_capabilities() {
    // The low-level deployment path: capabilities built straight from
    // registered regions, no kv-crate helpers.
    let (mut sim, client, server) = testbed();
    use redn::core::offloads::hash_lookup::{encode_bucket, BUCKET_SIZE};

    let table = sim.alloc(server, 8 * BUCKET_SIZE, 64).unwrap();
    let tmr = sim
        .register_mr(server, table, 8 * BUCKET_SIZE, Access::all())
        .unwrap();
    let values = sim.alloc(server, 8 * 8, 64).unwrap();
    let vmr = sim
        .register_mr(server, values, 8 * 8, Access::all())
        .unwrap();
    sim.mem_write_u64(server, values, 0xABCD).unwrap();
    let bucket = encode_bucket(values, 7);
    sim.mem_write(server, table, &bucket).unwrap();

    let ep = ClientEndpoint::create(&mut sim, client, 8).unwrap();
    let mut ctx = OffloadCtx::new(&mut sim, server).unwrap();
    let mut off = ctx
        .hash_get()
        .table(TableRegion::of(&tmr))
        .values(ValueSource::of(&vmr, 8))
        .respond_to(ClientDest::new(ep.resp_buf, ep.dest().rkey()))
        .variant(HashGetVariant::Single)
        .build(&mut sim)
        .unwrap();
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();

    off.arm(&mut sim, ctx.pool_mut()).unwrap();
    sim.post_recv(ep.qp, rnic_sim::wqe::WorkRequest::recv(0, 0, 0))
        .unwrap();
    let payload = off.client_payload(7, &[table]);
    sim.mem_write(client, ep.req_buf, &payload).unwrap();
    sim.post_send(
        ep.qp,
        redn::core::offloads::rpc::trigger_send(ep.req_buf, ep.req_lkey, payload.len() as u32),
    )
    .unwrap();
    sim.run().unwrap();
    assert_eq!(sim.poll_cq(ep.recv_cq, 4).len(), 1);
    assert_eq!(sim.mem_read_u64(client, ep.resp_buf).unwrap(), 0xABCD);
}

#[test]
fn ctx_builders_reject_missing_capabilities() {
    let (mut sim, _client, server) = testbed();
    let ctx = OffloadCtx::new(&mut sim, server).unwrap();
    // A deployment missing its table capability must fail loudly, not
    // deploy a broken offload.
    let err = match ctx.hash_get().build(&mut sim) {
        Err(e) => e,
        Ok(_) => panic!("hash-get deployment without a table must fail"),
    };
    assert!(format!("{err}").contains(".table("), "got: {err}");
    let err = match ctx.list_walk().build(&mut sim) {
        Err(e) => e,
        Ok(_) => panic!("list-walk deployment without a list must fail"),
    };
    assert!(format!("{err}").contains(".list("), "got: {err}");
}
