//! Integration tests for the §5.5/§5.6 properties: isolation under
//! contention, crash survival, and the security/isolation mechanisms the
//! paper discusses in §3.5.

use redn::kv::failure::{run_crash_timeline, run_os_panic_probe, CrashPath};
use redn::kv::isolation::{run_contention, ReaderPath};
use redn::prelude::*;
use rnic_sim::config::{LinkConfig, SimConfig};
use rnic_sim::qp::QpConfig;
use rnic_sim::time::Time;
use rnic_sim::wqe::WorkRequest;

#[test]
fn redn_isolated_from_writer_storm() {
    let storm = run_contention(16, 20, ReaderPath::RedN).unwrap();
    assert!(
        storm.stats.p99_us < 8.0,
        "RedN p99 under storm: {}",
        storm.stats.p99_us
    );
}

#[test]
fn vanilla_outage_matches_restart_plus_rebuild() {
    let timeline = run_crash_timeline(
        CrashPath::Vanilla,
        Time::from_secs(4),
        Time::from_secs(1),
        Time::from_ms(250),
        Time::from_us(100),
    )
    .unwrap();
    let dead = timeline.iter().filter(|p| p.normalized < 0.05).count() as f64 * 0.25;
    // Restart (1 s) + rebuild (1.25 s) = 2.25 s of darkness.
    assert!((dead - 2.25).abs() <= 0.5, "outage {dead}s");
    // Back to full throughput by the end.
    assert!(timeline.last().unwrap().normalized > 0.5);
}

#[test]
fn redn_timeline_never_dips() {
    let timeline = run_crash_timeline(
        CrashPath::RedN,
        Time::from_secs(2),
        Time::from_ms(700),
        Time::from_ms(250),
        Time::from_us(100),
    )
    .unwrap();
    for p in &timeline {
        assert!(
            p.normalized > 0.5,
            "dip at t={}: {}",
            p.t_secs,
            p.normalized
        );
    }
}

#[test]
fn nic_survives_kernel_panic() {
    assert_eq!(run_os_panic_probe(8).unwrap(), 8);
}

#[test]
fn rate_limiter_caps_a_malicious_loop() {
    // §3.5 "Isolation": even a non-terminating offload is bounded by the
    // per-QP rate limiter. A paced queue executing NOOPs must not exceed
    // its configured rate.
    let mut sim = Simulator::new(SimConfig::default());
    let n = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    let cq = sim.create_cq(n, 4096).unwrap();
    let qp = sim.create_qp(n, QpConfig::new(cq).sq_depth(2048)).unwrap();
    let peer = sim.create_qp(n, QpConfig::new(cq)).unwrap();
    sim.connect_qps(qp, peer).unwrap();
    sim.set_rate_limit(qp, 100_000.0, 1); // 100K ops/s
    for _ in 0..500 {
        sim.post_send_quiet(qp, WorkRequest::noop()).unwrap();
    }
    sim.ring_doorbell(qp).unwrap();
    sim.run_until(Time::from_ms(2)).unwrap();
    let executed = sim.wq_executed(sim.sq_of(qp));
    // 2 ms at 100K ops/s = ~200 ops (+1 burst).
    assert!(
        executed <= 210,
        "rate limiter leaked: {executed} ops in 2 ms at 100K/s"
    );
    assert!(executed >= 150, "rate limiter over-throttled: {executed}");
}

#[test]
fn clients_need_no_rkeys_for_redn_triggers() {
    // §3.5 "Security": RedN clients interact via two-sided SENDs only.
    // A client that tries a one-sided WRITE into the server without a
    // valid rkey gets a protection error, while the SEND path works.
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    let ccq = sim.create_cq(c, 16).unwrap();
    let cqp = sim.create_qp(c, QpConfig::new(ccq)).unwrap();
    let scq = sim.create_cq(s, 16).unwrap();
    let sqp = sim.create_qp(s, QpConfig::new(scq)).unwrap();
    sim.connect_qps(cqp, sqp).unwrap();

    let secret = sim.alloc(s, 8, 8).unwrap();
    sim.register_mr(s, secret, 8, Access::all()).unwrap();
    sim.mem_write_u64(s, secret, 0x5EC2E7).unwrap();
    let buf = sim.alloc(c, 8, 8).unwrap();
    let bmr = sim.register_mr(c, buf, 8, Access::all()).unwrap();

    // Guessed rkey: denied.
    sim.post_send(cqp, WorkRequest::write(buf, bmr.lkey, 8, secret, 0x1337))
        .unwrap();
    sim.run().unwrap();
    let cqe = sim.poll_cq(ccq, 1).pop().unwrap();
    assert_eq!(cqe.status, rnic_sim::cq::CqeStatus::ProtectionError);
    assert_eq!(sim.mem_read_u64(s, secret).unwrap(), 0x5EC2E7);

    // SEND needs no keys at all (the server posted a RECV).
    let dst = sim.alloc(s, 8, 8).unwrap();
    let dmr = sim.register_mr(s, dst, 8, Access::all()).unwrap();
    sim.post_recv(sqp, WorkRequest::recv(dst, dmr.lkey, 8))
        .unwrap();
    sim.post_send(cqp, WorkRequest::send(buf, bmr.lkey, 8).signaled())
        .unwrap();
    sim.run().unwrap();
    assert!(sim
        .poll_cq(ccq, 4)
        .iter()
        .all(|c| c.status == rnic_sim::cq::CqeStatus::Success));
}

#[test]
fn offloads_are_auditable_via_completions() {
    // §3.5: "offloaded code can be configured by the servers to be
    // auditable through completion events". Every executed WQE with the
    // signaled flag shows up on the chain's CQ — count them.
    use redn::core::ctx::OffloadCtx;
    let mut sim = Simulator::new(SimConfig::default());
    let n = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    let mut ctx = OffloadCtx::new(&mut sim, n).unwrap();
    let buf = sim.alloc(n, 8, 8).unwrap();
    let mr = sim.register_mr(n, buf, 8, Access::all()).unwrap();
    let mut prog = ctx.chain_program(&mut sim).unwrap();
    let branch = prog.if_eq(9, WorkRequest::write(buf, mr.lkey, 8, buf, mr.rkey));
    let ctrl_cq = prog.ctrl_queue().cq;
    let armed = prog.deploy(&mut sim).unwrap();
    branch.inject_x(&mut sim, 9).unwrap();
    armed.launch(&mut sim).unwrap();
    sim.run().unwrap();
    // The CAS signaled on the control CQ: the audit trail exists.
    assert!(sim.cq_total(ctrl_cq) >= 1);
}
