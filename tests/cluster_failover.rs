//! End-to-end failover soak: kill a shard primary mid-stream and prove
//! the §5.6 story at cluster level — every acked write survives on the
//! promoted backup, in-flight writes surface as typed errors (never
//! hangs), and the rebuilt chain continues the sequence.

use redn::cluster::prelude::*;
use redn::kv::session::SessionOpts;
use rnic_sim::cq::CqeStatus;
use rnic_sim::time::Time;

/// Keys owned by shard `s` that are NOT in the populated seed range, so
/// puts exercise fresh inserts end to end.
fn fresh_keys(cluster: &Cluster, s: usize, n: usize) -> Vec<u64> {
    (cluster.spec.nkeys + 1..)
        .filter(|&k| cluster.shard_for(k) == s)
        .take(n)
        .collect()
}

#[test]
fn killed_primary_loses_no_acked_write() {
    let (mut sim, mut cluster) = Cluster::deploy(ClusterSpec::small()).unwrap();
    let mut session =
        ClusterSession::connect(&mut sim, &mut cluster, SessionOpts::default()).unwrap();
    let controller = FailoverController::default();

    // Write a batch of acked records to one shard.
    let s = cluster.shard_for(cluster.spec.nkeys + 1);
    let keys = fresh_keys(&cluster, s, 10);
    let mut acked = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        let value = vec![0xA0 + i as u8; 16];
        let ack = session
            .put_blocking(&mut sim, &cluster, key, &value)
            .unwrap();
        assert_eq!(ack.seq, i as u64 + 1, "sequence is contiguous");
        acked.push((key, value));
    }

    // Kill the primary's serving process.
    let stack = cluster.serving_stack(s);
    let (dead_node, dead_pid) = (cluster.shards[stack].node, cluster.shards[stack].pid);
    assert!(sim.kill_process(dead_node, dead_pid));

    // An in-flight put must fail typed, not hang: the SEND completes
    // with RnrError after the dead-QP timeout.
    let extra = fresh_keys(&cluster, s, 11)[10];
    session
        .put_session_mut(s)
        .put(&mut sim, extra, &[0xFF; 16])
        .unwrap();
    sim.run().unwrap();

    // Heartbeat detection fires before the client even reaps: writes
    // are in flight and the ack CQ has gone silent.
    assert!(
        session.put_session(s).suspect(&sim, Time::from_us(50)),
        "heartbeat silence marks the primary suspect"
    );
    let reaped = session.put_session_mut(s).reap(&mut sim);
    assert!(reaped.acks.is_empty(), "no ack from a dead primary");
    assert_eq!(reaped.failures.len(), 1, "typed failure, not a hang");
    let failure = reaped.failures[0];
    assert_eq!(failure.status, CqeStatus::RnrError);
    assert_eq!(failure.key, extra);
    assert!(controller.suspect(&sim, &session, s, Some(failure.status)));

    // Fail over: promote the journal holder, re-route, re-replicate.
    let report = controller
        .fail_over(&mut sim, &mut cluster, &mut session, s)
        .unwrap();
    assert_eq!(report.old_node, dead_node);
    assert_eq!(
        report.records_recovered, 10,
        "exactly the acked writes — the failed in-flight put never replicated"
    );
    assert_ne!(report.new_node, dead_node);
    assert!(report.promote_us() >= 0.0);
    assert!(
        report.rereplicate_us() > 0.0,
        "journal copy to the new backup takes simulated time"
    );
    assert_ne!(cluster.serving_stack(s), stack, "shard re-routed");

    // Every acked write is readable from the promoted backup.
    for (key, value) in &acked {
        let got = session.get_blocking(&mut sim, &cluster, *key).unwrap();
        assert_eq!(&got, value, "acked write for key {key} survived");
    }

    // The rebuilt chain continues the sequence past the recovery.
    let more = fresh_keys(&cluster, s, 12)[11];
    let ack = session
        .put_blocking(&mut sim, &cluster, more, &[0x55; 16])
        .unwrap();
    assert_eq!(ack.seq, 11, "sequence continues after failover");
    assert_eq!(
        session.get_blocking(&mut sim, &cluster, more).unwrap(),
        vec![0x55; 16]
    );

    // Untouched shards still serve their seed data throughout.
    for key in 1..=8u64 {
        if cluster.shard_for(key) == s {
            continue;
        }
        let got = session.get_blocking(&mut sim, &cluster, key).unwrap();
        assert_eq!(got, vec![(key & 0xFF) as u8; 16], "shard for key {key}");
    }
}

#[test]
fn acked_writes_replicate_with_zero_primary_host_work() {
    let (mut sim, mut cluster) = Cluster::deploy(ClusterSpec::small()).unwrap();
    let mut session =
        ClusterSession::connect(&mut sim, &mut cluster, SessionOpts::default()).unwrap();

    let s = cluster.shard_for(cluster.spec.nkeys + 1);
    let keys = fresh_keys(&cluster, s, 12);
    let primary = cluster.shards[cluster.serving_stack(s)].node;

    // Warm-up: one full window.
    for &key in &keys[..4] {
        session
            .put_blocking(&mut sim, &cluster, key, &[1; 16])
            .unwrap();
    }
    let doorbells = sim.node_doorbells(primary);
    let posts = sim.node_posts(primary);
    for &key in &keys[4..] {
        session
            .put_blocking(&mut sim, &cluster, key, &[2; 16])
            .unwrap();
    }
    assert_eq!(
        sim.node_doorbells(primary),
        doorbells,
        "steady-state replication rings no primary doorbell"
    );
    assert_eq!(
        sim.node_posts(primary),
        posts,
        "steady-state replication posts no primary WQE"
    );
}
