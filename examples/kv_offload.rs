//! Key-value get offload (Fig 9 / §5.4): a Memcached-like store whose
//! `get`s are served by the NIC, next to the paper's two baselines.
//!
//! ```text
//! cargo run --example kv_offload
//! ```

use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::baselines::{two_sided_get, ClientEndpoint, OneSidedClient, TwoSidedMode};
use redn::kv::hopscotch::HopscotchTable;
use redn::kv::memcached::{redn_get, MemcachedServer};
use redn::prelude::*;
use rnic_sim::config::{LinkConfig, SimConfig};
use rnic_sim::ids::ProcessId;

fn main() {
    let mut sim = Simulator::new(SimConfig::default());
    let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let server = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
    sim.connect_nodes(client, server, LinkConfig::back_to_back());

    // A Memcached-like store with 100 keys of 64 B values.
    let mc = MemcachedServer::create(&mut sim, server, 1024, 64, ProcessId(0)).unwrap();
    mc.populate(&mut sim, 100).unwrap();
    sim.set_runnable_threads(server, 1);

    // RedN frontend: gets answered by the NIC. The offload context owns
    // the server-side resources; the client only hands over a typed
    // response capability (no raw keys).
    let ep = ClientEndpoint::create(&mut sim, client, 64).unwrap();
    let mut ctx = OffloadCtx::builder(server)
        .pool_capacity(1 << 20)
        .build(&mut sim)
        .unwrap();
    let mut off = mc
        .redn_frontend(&mut sim, &ctx, ep.dest(), HashGetVariant::Parallel)
        .unwrap();
    sim.connect_qps(ep.qp, off.tp.qp).unwrap();
    let (redn_lat, found) = redn_get(&mut sim, &mut off, ctx.pool_mut(), &ep, &mc, 42).unwrap();
    assert!(found);
    let v = sim.mem_read(client, ep.resp_buf, 1).unwrap()[0];
    println!(
        "RedN get(42)      -> value {v:#04x} in {:.2} us (zero server CPU)",
        redn_lat.as_us_f64()
    );

    // Two-sided VMA baseline.
    let vma = mc.two_sided_frontend(&mut sim, TwoSidedMode::Vma).unwrap();
    let ep2 = ClientEndpoint::create(&mut sim, client, 64).unwrap();
    sim.connect_qps(ep2.qp, vma.qp).unwrap();
    let (vma_lat, found) = two_sided_get(&mut sim, &ep2, 42).unwrap();
    assert!(found);
    println!(
        "two-sided get(42) -> {:.2} us over the VMA socket stack",
        vma_lat.as_us_f64()
    );

    // One-sided baseline on a hopscotch table with the same data.
    let mut hs = HopscotchTable::create(&mut sim, server, 1024, 64, ProcessId(0)).unwrap();
    hs.insert(&mut sim, 42, &[42u8; 64]).unwrap();
    let one = OneSidedClient::create(&mut sim, client, &hs).unwrap();
    let scq = sim.create_cq(server, 16).unwrap();
    let sqp = sim
        .create_qp(server, rnic_sim::qp::QpConfig::new(scq))
        .unwrap();
    sim.connect_qps(one.ep.qp, sqp).unwrap();
    let (one_lat, found) = one.get(&mut sim, 42, &hs.candidates(42)).unwrap();
    assert!(found);
    println!(
        "one-sided get(42) -> {:.2} us across two READ round trips",
        one_lat.as_us_f64()
    );

    println!(
        "\nRedN wins: {:.1}x vs one-sided, {:.1}x vs two-sided (paper Fig 14: up to 1.7x / 2.6x)",
        one_lat.as_us_f64() / redn_lat.as_us_f64(),
        vma_lat.as_us_f64() / redn_lat.as_us_f64()
    );
}
