//! Linked-list traversal offload (Fig 12/13): the NIC walks a remote
//! list, with and without the self-modifying `break`.
//!
//! ```text
//! cargo run --example list_traversal
//! ```

use redn::core::ctx::{OffloadCtx, TableRegion};
use redn::core::offloads::list::{encode_node, NODE_HEADER};
use redn::core::offloads::rpc;
use redn::kv::baselines::{run_until_cqe, ClientEndpoint};
use redn::prelude::*;
use rnic_sim::config::{LinkConfig, SimConfig};
use rnic_sim::wqe::WorkRequest;

const VALUE_LEN: u32 = 64;
const LIST_LEN: u64 = 8;

fn main() {
    for with_break in [false, true] {
        let mut sim = Simulator::new(SimConfig::default());
        let client = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
        let server = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());
        sim.connect_nodes(client, server, LinkConfig::back_to_back());

        // Build an 8-node list; node i has key 100+i, value byte i+1.
        let node_size = NODE_HEADER + VALUE_LEN as u64;
        let base = sim.alloc(server, LIST_LEN * node_size, 64).unwrap();
        let mr = sim
            .register_mr(server, base, LIST_LEN * node_size, Access::all())
            .unwrap();
        for i in 0..LIST_LEN {
            let addr = base + i * node_size;
            let next = if i + 1 < LIST_LEN {
                addr + node_size
            } else {
                0
            };
            let bytes = encode_node(next, 100 + i, &vec![(i + 1) as u8; VALUE_LEN as usize]);
            sim.mem_write(server, addr, &bytes).unwrap();
        }

        let ep = ClientEndpoint::create(&mut sim, client, VALUE_LEN).unwrap();
        let mut ctx = OffloadCtx::builder(server)
            .pool_capacity(1 << 20)
            .build(&mut sim)
            .unwrap();
        let mut builder = ctx
            .list_walk()
            .list(TableRegion::of(&mr))
            .value_len(VALUE_LEN)
            .respond_to(ep.dest())
            .max_nodes(LIST_LEN as usize);
        if with_break {
            builder = builder.break_on_match();
        }
        let mut off = builder.build(&mut sim).unwrap();
        sim.connect_qps(ep.qp, off.tp.qp).unwrap();
        off.arm(&mut sim, ctx.pool_mut()).unwrap();

        // Walk for key 102 (third node).
        let before = sim.verbs_executed(server);
        sim.post_recv(ep.qp, WorkRequest::recv(0, 0, 0)).unwrap();
        let payload = off.client_payload(base, 102);
        sim.mem_write(client, ep.req_buf, &payload).unwrap();
        let start = sim.now();
        sim.post_send(
            ep.qp,
            rpc::trigger_send(ep.req_buf, ep.req_lkey, payload.len() as u32),
        )
        .unwrap();
        let cqe = run_until_cqe(&mut sim, ep.recv_cq)
            .unwrap()
            .expect("response");
        let latency = cqe.time - start;
        let value = sim.mem_read(client, ep.resp_buf, 1).unwrap()[0];
        sim.run().unwrap(); // drain the abandoned tail, if any
        let executed = sim.verbs_executed(server) - before;
        println!(
            "{}: key 102 -> node #{value} in {:.2} us, {executed} verbs executed",
            if with_break {
                "RedN +break "
            } else {
                "RedN        "
            },
            latency.as_us_f64(),
        );
        assert_eq!(value, 3);
    }
    println!(
        "\nbreak abandons the remaining iterations — fewer verbs, slightly more latency (Fig 13)."
    );
}
