//! Multi-tenant serving: pack four named tenants' self-recycling
//! offloads onto one dual-port NIC's shared processing units, prove
//! tenant isolation at deploy, then rate-cap one tenant and drive it
//! well past its cap — its own pacer sheds the overload while its
//! neighbor keeps running at full speed.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::liststore::ListStore;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{FleetSpec, ServingFleet};
use redn::kv::tenancy::{NicGeometry, TenantPacker, TenantQuotas, TenantSpec};
use redn::kv::workload::Workload;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::{NodeId, ProcessId};
use rnic_sim::sim::Simulator;

const NKEYS: u64 = 1024;
const OPS_PER_CLIENT: u64 = 200;

fn testbed() -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    let s = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    (sim, c, s)
}

fn deploy(tenants: &[TenantSpec]) -> (Simulator, OffloadCtx, ServingFleet) {
    let (mut sim, c, s) = testbed();
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, NKEYS).unwrap();
    let store = ListStore::create(&mut sim, s, 16, 4, 64, ProcessId(0)).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    // Admission + placement: the packer bin-packs every tenant's PU
    // demand onto the NIC's ports, refusing over-subscribed specs with
    // an error naming the tenant and the quota.
    let spec = FleetSpec::tenants(NicGeometry::of(&sim, s), tenants).unwrap();
    let workloads = Workload::split_sequential(NKEYS, spec.get_clients());
    let fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        c,
        spec,
        workloads,
    )
    .unwrap();
    (sim, ctx, fleet)
}

fn main() {
    // Four tenants, two offload families, one NIC.
    let tenants = vec![
        TenantSpec::new("analytics").with_gets(2, 8, HashGetVariant::Sequential, true),
        TenantSpec::new("cache").with_gets(1, 8, HashGetVariant::Sequential, true),
        TenantSpec::new("graph").with_walks(2, 8, 4, true),
        TenantSpec::new("mixed")
            .with_gets(1, 8, HashGetVariant::Sequential, true)
            .with_walks(1, 8, 4, true),
    ];
    let (mut sim, mut ctx, mut fleet) = deploy(&tenants);

    // Deploy already ran the isolation proof; every proven program is
    // labeled tenant/offload, so a violation would name who hit whom.
    let report = fleet.isolation_report();
    println!(
        "isolation: {} programs proven pairwise non-interfering ({} checks)",
        report.programs, report.checked
    );
    for label in &report.labels {
        println!("  {label}");
    }

    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 8)
        .unwrap();
    println!("\npacked fleet: {:>8.0} ops/s aggregate", stats.ops_per_sec);
    for ts in &stats.per_tenant {
        let p99 = ts.latency.map(|l| l.p99_us).unwrap_or(f64::NAN);
        println!(
            "  {:<9} {:>8.0} ops/s  (p99 {:>5.1} us, {} host arms)",
            ts.tenant, ts.ops_per_sec, p99, ts.host_arm_calls
        );
    }

    // QoS: rate-cap "analytics" at 60K ops/s and drive it flat out.
    // Credit pacing on its trigger path sheds *its* posts; "cache" next
    // to it is untouched.
    let capped = vec![
        TenantSpec::new("analytics")
            .with_gets(2, 8, HashGetVariant::Sequential, true)
            .rate_cap(60_000.0)
            .with_quotas(TenantQuotas {
                pus: Some(4),
                ..TenantQuotas::default()
            }),
        TenantSpec::new("cache").with_gets(1, 8, HashGetVariant::Sequential, true),
    ];
    let (mut sim, mut ctx, mut fleet) = deploy(&capped);
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 8)
        .unwrap();
    println!("\nwith 'analytics' capped at 60K ops/s:");
    for ts in &stats.per_tenant {
        println!(
            "  {:<9} {:>8.0} ops/s  ({} posts shed by its own pacer)",
            ts.tenant, ts.ops_per_sec, ts.shed_posts
        );
    }

    // Admission control: a tenant demanding more PUs than its quota is
    // refused before anything touches the NIC.
    let greedy = vec![TenantSpec::new("greedy")
        .with_gets(4, 8, HashGetVariant::Sequential, true)
        .with_quotas(TenantQuotas {
            pus: Some(4),
            ..TenantQuotas::default()
        })];
    let geometry = NicGeometry {
        ports: 2,
        pus_per_port: 8,
    };
    let err = TenantPacker::new(geometry).pack(&greedy).unwrap_err();
    println!("\nadmission: {err}");
}
