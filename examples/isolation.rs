//! Performance isolation (Fig 15 / §5.5): a writer storm hammers the
//! server CPU; the reader's get latency explodes over two-sided RPC but
//! stays flat over the RedN offload.
//!
//! ```text
//! cargo run --release --example isolation
//! ```

use redn::kv::isolation::{run_contention, ReaderPath};

fn main() {
    println!("reader get latency vs writer count (30 gets per point):\n");
    println!(
        "{:>8}  {:>22}  {:>26}",
        "writers", "RedN avg/p99 (us)", "two-sided avg/p99 (us)"
    );
    for writers in [0usize, 4, 8, 16] {
        let redn = run_contention(writers, 30, ReaderPath::RedN).unwrap();
        let two = run_contention(writers, 30, ReaderPath::TwoSided).unwrap();
        println!(
            "{:>8}  {:>10.2} / {:<9.2}  {:>12.2} / {:<11.2}",
            writers, redn.stats.avg_us, redn.stats.p99_us, two.stats.avg_us, two.stats.p99_us,
        );
    }
    println!(
        "\nThe NIC does not context-switch: RedN's tail never moves (paper: 35x \
         lower p99 at 16 writers)."
    );
}
