//! Serve a heterogeneous fleet — pipelined Memcached gets *and* linked
//! list walks on one NIC (§5.4's traffic shape over the §3.3/§3.4
//! offload mix) — and compare against the synchronous request path.
//!
//! ```text
//! cargo run --example serving_fleet
//! ```

use redn::core::ctx::OffloadCtx;
use redn::core::offloads::hash_lookup::HashGetVariant;
use redn::kv::liststore::ListStore;
use redn::kv::memcached::MemcachedServer;
use redn::kv::serving::{sync_baseline_ops_per_sec, FleetSpec, ServiceSpec, ServingFleet};
use redn::kv::workload::Workload;
use rnic_sim::config::{HostConfig, LinkConfig, NicConfig, SimConfig};
use rnic_sim::ids::ProcessId;
use rnic_sim::sim::Simulator;

const NKEYS: u64 = 1024;
const OPS_PER_CLIENT: u64 = 200;

fn testbed() -> (Simulator, rnic_sim::ids::NodeId, rnic_sim::ids::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let c = sim.add_node("client", HostConfig::default(), NicConfig::connectx5());
    // Dual-port server: the fleet shards trigger points across both
    // ports' fetch engines (the paper's Table 4 configuration).
    let s = sim.add_node(
        "server",
        HostConfig::default(),
        NicConfig::connectx5().dual_port(),
    );
    sim.connect_nodes(c, s, LinkConfig::back_to_back());
    (sim, c, s)
}

fn main() {
    // Baseline: one client, one get at a time.
    let sync = {
        let (mut sim, c, s) = testbed();
        let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
        server.populate(&mut sim, NKEYS).unwrap();
        let mut ctx = OffloadCtx::builder(s)
            .pool_capacity(1 << 24)
            .build(&mut sim)
            .unwrap();
        let mut workload = Workload::sequential(1, NKEYS as usize);
        sync_baseline_ops_per_sec(
            &mut sim,
            &mut ctx,
            &server,
            c,
            HashGetVariant::Parallel,
            OPS_PER_CLIENT,
            &mut workload,
        )
        .unwrap()
    };
    println!("sync baseline (1 client, 1 in flight): {:>8.0} ops/s", sync);

    // The homogeneous fleet: 4 get clients x pipeline depth 8.
    let (mut sim, c, s) = testbed();
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, NKEYS).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    // §3.4 self-recycling: instances primed once, the NIC re-arms them
    // between rounds — zero host work per request.
    let spec = FleetSpec::gets(4, 8, HashGetVariant::Sequential, true);
    // Disjoint per-client key ranges, as in the isolation experiment.
    let workloads = Workload::split_sequential(NKEYS, 4);
    let mut fleet =
        ServingFleet::deploy(&mut sim, &mut ctx, &server, None, c, spec, workloads).unwrap();

    for k in [1u32, 2, 4, 8] {
        let stats = fleet
            .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, k)
            .unwrap();
        let lat = stats.latency.expect("ops completed");
        println!(
            "fleet closed loop K={k}: {:>8.0} ops/s  (avg {:.1} us, p99 {:.1} us, {:.2}x sync, \
             {} host arms, {} server doorbells)",
            stats.ops_per_sec,
            lat.avg_us,
            lat.p99_us,
            stats.ops_per_sec / sync,
            stats.host_arm_calls,
            stats.server_doorbells
        );
    }

    // Open loop at half the measured capacity: latency stays flat.
    let stats = fleet
        .run_open_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 100_000.0)
        .unwrap();
    let lat = stats.latency.expect("ops completed");
    println!(
        "fleet open loop @400K offered: {:>8.0} ops/s (sched p99 {:.1} us)",
        stats.ops_per_sec, lat.p99_us
    );

    // The heterogeneous fleet: 3 get services + 1 list-walk service,
    // both families self-recycling, side by side on one NIC.
    let (mut sim, c, s) = testbed();
    let server = MemcachedServer::create(&mut sim, s, 4096, 64, ProcessId(0)).unwrap();
    server.populate(&mut sim, NKEYS).unwrap();
    let store = ListStore::create(&mut sim, s, 8, 4, 64, ProcessId(0)).unwrap();
    let mut ctx = OffloadCtx::builder(s)
        .pool_capacity(1 << 24)
        .build(&mut sim)
        .unwrap();
    let spec = FleetSpec::new(vec![
        ServiceSpec::gets(3, 8, HashGetVariant::Sequential, true),
        ServiceSpec::walks(1, 8, store.nodes_per_list, true),
    ]);
    let workloads = Workload::split_sequential(NKEYS, 3);
    let mut fleet = ServingFleet::deploy(
        &mut sim,
        &mut ctx,
        &server,
        Some(&store),
        c,
        spec,
        workloads,
    )
    .unwrap();
    let stats = fleet
        .run_closed_loop(&mut sim, ctx.pool_mut(), OPS_PER_CLIENT, 8)
        .unwrap();
    println!(
        "mixed fleet (3 gets + 1 walk) K=8: {:>8.0} ops/s ({} gets, {} walks, {:.2}x sync, \
         {} host arms)",
        stats.ops_per_sec,
        stats.get_ops,
        stats.walk_ops,
        stats.ops_per_sec / sync,
        stats.host_arm_calls
    );
}
