//! Quickstart: an `if (x == y)` branch executed by the (simulated) NIC.
//!
//! This is Fig 4 of the paper: a CAS compares a runtime operand stored in
//! another WQE's id bits and, on a match, transmutes that WQE from a NOOP
//! into a WRITE. No CPU touches the decision.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use redn::core::builder::ChainBuilder;
use redn::core::constructs::cond::IfEq;
use redn::core::program::ChainQueue;
use redn::prelude::*;
use rnic_sim::config::SimConfig;
use rnic_sim::ids::ProcessId;

fn main() {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());

    // Two chain queues: an unmanaged control queue for the CAS and the
    // ordering verbs, and a managed queue for the (self-modified) action.
    let ctrl = ChainQueue::create(&mut sim, node, false, 64, None, ProcessId(0)).unwrap();
    let act = ChainQueue::create(&mut sim, node, true, 64, None, ProcessId(0)).unwrap();

    // The branch body: write 1 into `flag`.
    let flag = sim.alloc(node, 8, 8).unwrap();
    let fmr = sim.register_mr(node, flag, 8, Access::all()).unwrap();
    let one = sim.alloc(node, 8, 8).unwrap();
    let omr = sim.register_mr(node, one, 8, Access::all()).unwrap();
    sim.mem_write_u64(node, one, 1).unwrap();

    for (x, y) in [(5u64, 5u64), (5, 6)] {
        sim.mem_write_u64(node, flag, 0).unwrap();
        let mut ctrl_b = ChainBuilder::new(&sim, ctrl);
        let mut act_b = ChainBuilder::new(&sim, act);
        let action = rnic_sim::wqe::WorkRequest::write(one, omr.lkey, 8, flag, fmr.rkey);
        let branch = IfEq::build(&mut ctrl_b, &mut act_b, y, action, None);
        println!(
            "if (x == {y}): verbs = {}C + {}A + {}E (paper Table 2: 1C + 1A + 3E with trigger)",
            branch.counts.copies, branch.counts.atomics, branch.counts.ordering
        );
        act_b.post(&mut sim).unwrap();
        branch.inject_x(&mut sim, x).unwrap();
        ctrl_b.post(&mut sim).unwrap();
        sim.run().unwrap();
        let taken = sim.mem_read_u64(node, flag).unwrap() == 1;
        println!("x = {x}, y = {y}  ->  branch {}", if taken { "TAKEN" } else { "not taken" });
        assert_eq!(taken, x == y);
    }
    println!("\nThe NIC made both decisions by itself — no CPU in the data path.");
}
