//! Quickstart: an `if (x == y)` branch executed by the (simulated) NIC.
//!
//! This is Fig 4 of the paper: a CAS compares a runtime operand stored in
//! another WQE's id bits and, on a match, transmutes that WQE from a NOOP
//! into a WRITE. No CPU touches the decision.
//!
//! Everything deploys through the fluent [`OffloadCtx`] API: the context
//! owns the chain queues and the constant pool, and the [`ChainProgram`]
//! combinator computes every WAIT threshold and patch-point address.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use redn::core::ctx::OffloadCtx;
use redn::prelude::*;
use rnic_sim::config::SimConfig;

fn main() {
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("server", HostConfig::default(), NicConfig::connectx5());

    // One context owns the offload resources: an unmanaged control queue
    // for CAS + ordering verbs, a managed queue for the self-modified
    // action, and a registered constant pool.
    let mut ctx = OffloadCtx::new(&mut sim, node).unwrap();

    // The branch body: write 1 into `flag`.
    let flag = sim.alloc(node, 8, 8).unwrap();
    let fmr = sim.register_mr(node, flag, 8, Access::all()).unwrap();
    let one = sim.alloc(node, 8, 8).unwrap();
    let omr = sim.register_mr(node, one, 8, Access::all()).unwrap();
    sim.mem_write_u64(node, one, 1).unwrap();

    for (x, y) in [(5u64, 5u64), (5, 6)] {
        sim.mem_write_u64(node, flag, 0).unwrap();
        let mut prog = ctx.chain_program(&mut sim).unwrap();
        let action = rnic_sim::wqe::WorkRequest::write(one, omr.lkey, 8, flag, fmr.rkey);
        let branch = prog.if_eq(y, action);
        let counts = prog.counts();
        println!(
            "if (x == {y}): verbs = {}C + {}A + {}E (paper Table 2: 1C + 1A + 3E with trigger)",
            counts.copies, counts.atomics, counts.ordering
        );
        // Two-phase deployment: post the action queue, inject the runtime
        // operand, then launch the control chain.
        let armed = prog.deploy(&mut sim).unwrap();
        branch.inject_x(&mut sim, x).unwrap();
        armed.launch(&mut sim).unwrap();
        sim.run().unwrap();
        let taken = sim.mem_read_u64(node, flag).unwrap() == 1;
        println!(
            "x = {x}, y = {y}  ->  branch {}",
            if taken { "TAKEN" } else { "not taken" }
        );
        assert_eq!(taken, x == y);
    }
    println!("\nThe NIC made both decisions by itself — no CPU in the data path.");
}
