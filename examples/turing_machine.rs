//! The title claim, demonstrated: a Turing machine compiled to a
//! self-modifying, self-restoring, WQ-recycling RDMA ring that runs
//! entirely on the (simulated) NIC.
//!
//! ```text
//! cargo run --example turing_machine
//! ```

use redn::core::ctx::OffloadCtx;
use redn::core::turing::machine::TuringMachine;
use redn::prelude::*;
use rnic_sim::config::SimConfig;
use rnic_sim::time::Time;

fn show(tape: &[u32]) -> String {
    tape.iter()
        .map(|c| char::from_digit(*c, 10).unwrap())
        .collect()
}

fn main() {
    // 1. Busy beaver: the classic 2-state champion.
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let tm = TuringMachine::busy_beaver_2();
    let tape = vec![0u32; 9];
    println!("busy beaver (2 states, 2 symbols), tape {}", show(&tape));
    let mut ctx = OffloadCtx::new(&mut sim, node).unwrap();
    let compiled = ctx.compile_tm(&mut sim, &tm, &tape, 4).unwrap();
    sim.run().unwrap(); // the ring recycles until the halting rule fires
    println!(
        "  NIC result:  {}  (halted = {}, {} steps, {:.1} us simulated)",
        show(&compiled.read_tape(&sim).unwrap()),
        compiled.halted(&sim).unwrap(),
        compiled.steps(&sim),
        sim.now().as_us_f64(),
    );
    let reference = tm.run(&tape, 4, 1000);
    println!(
        "  reference:   {}  ({} steps)",
        show(&reference.tape),
        reference.steps
    );
    assert_eq!(compiled.read_tape(&sim).unwrap(), reference.tape);

    // 2. Binary increment: 13 + 1, least-significant bit first.
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let tm = TuringMachine::binary_increment();
    let tape = vec![1u32, 0, 1, 1, 0, 0]; // 13 LSB-first
    println!("\nbinary increment: 13 + 1, tape {}", show(&tape));
    let mut ctx = OffloadCtx::new(&mut sim, node).unwrap();
    let compiled = ctx.compile_tm(&mut sim, &tm, &tape, 0).unwrap();
    sim.run().unwrap();
    let out = compiled.read_tape(&sim).unwrap();
    let value: u32 = out.iter().enumerate().map(|(i, b)| b << i).sum();
    println!("  NIC result:  {} = {value}", show(&out));
    assert_eq!(value, 14);

    // 3. Nontermination (requirement T3): the spinner flips a cell
    // forever; only the clock stops it.
    let mut sim = Simulator::new(SimConfig::default());
    let node = sim.add_node("nic", HostConfig::default(), NicConfig::connectx5());
    let tm = TuringMachine::spinner();
    let mut ctx = OffloadCtx::new(&mut sim, node).unwrap();
    let compiled = ctx.compile_tm(&mut sim, &tm, &[0, 0], 0).unwrap();
    sim.run_until(Time::from_ms(1)).unwrap();
    println!(
        "\nspinner after 1 ms of simulated time: {} steps and still going (halted = {})",
        compiled.steps(&sim),
        compiled.halted(&sim).unwrap()
    );
    assert!(!compiled.halted(&sim).unwrap());
    println!("\nRDMA is Turing complete — constructively.");
}
