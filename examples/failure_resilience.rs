//! Failure resiliency (Fig 16 / §5.6): kill the Memcached process mid-run
//! — the RedN offload, whose resources live in a hull parent, keeps
//! serving; vanilla Memcached goes dark for restart + rebuild. Then panic
//! the whole kernel and watch the NIC keep answering.
//!
//! ```text
//! cargo run --release --example failure_resilience
//! ```

use redn::kv::failure::{run_crash_timeline, run_os_panic_probe, CrashPath};
use rnic_sim::time::Time;

fn spark(v: f64) -> char {
    const BARS: [char; 9] = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    BARS[((v * 8.0).round() as usize).min(8)]
}

fn main() {
    // A scaled-down Fig 16: 4 s run, crash at 1 s (the repro binary runs
    // the paper's full 12 s / 5 s version).
    let duration = Time::from_secs(4);
    let crash_at = Time::from_secs(1);
    let bucket = Time::from_ms(250);
    let pace = Time::from_us(150);

    println!("process crash at t = 1 s (normalized gets per 250 ms bucket):\n");
    for (name, path) in [
        ("RedN   ", CrashPath::RedN),
        ("vanilla", CrashPath::Vanilla),
    ] {
        let timeline = run_crash_timeline(path, duration, crash_at, bucket, pace).unwrap();
        print!("  {name} ");
        for p in &timeline {
            print!("{}", spark(p.normalized));
        }
        let dead = timeline.iter().filter(|p| p.normalized < 0.05).count();
        println!("   ({:.2} s of outage)", dead as f64 * 0.25);
    }

    println!("\nkernel panic: can the NIC still answer? (paper §5.6 'OS failure')");
    let ok = run_os_panic_probe(10).unwrap();
    println!("  {ok}/10 gets served after the panic — the RNIC does not need the OS.");
    assert_eq!(ok, 10);
}
