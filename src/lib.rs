//! # redn — "RDMA is Turing complete, we just did not know it yet!" in Rust
//!
//! Facade crate re-exporting the workspace members:
//!
//! * [`sim`] ([`rnic_sim`]) — the simulated RDMA NIC substrate;
//! * [`core`] ([`redn_core`]) — the RedN computational framework
//!   (self-modifying chains, conditionals, loops, offloads, Turing
//!   machines);
//! * [`kv`] ([`redn_kv`]) — the Memcached-like key-value substrate and
//!   the paper's baselines;
//! * [`cluster`] ([`redn_cluster`]) — sharded multi-node serving with
//!   NIC-resident chain replication and failover.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

#![warn(missing_docs)]

pub use redn_cluster as cluster;
pub use redn_core as core;
pub use redn_kv as kv;
pub use rnic_sim as sim;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use redn_cluster::prelude::*;
    pub use redn_core::prelude::*;
    pub use redn_kv::prelude::*;
    pub use rnic_sim::prelude::*;
}
